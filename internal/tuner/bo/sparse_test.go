package bo

import (
	"math/rand"
	"reflect"
	"testing"

	"autodbaas/internal/knobs"
	"autodbaas/internal/tuner"
)

// TestSparseSurrogateEngagesAboveThreshold drives a tuner configured
// with a sparse threshold through the control plane's observe/recommend
// pattern and checks the surrogate switches paths once the training set
// is large enough — visible through the refit counter modes.
func TestSparseSurrogateEngagesAboveThreshold(t *testing.T) {
	tn, err := New(Options{
		Engine: knobs.Postgres, Candidates: 30, MaxSamplesPerFit: 200,
		UCBBeta: 0.5, TopKnobs: 6, Seed: 7,
		SparseThreshold: 40, InducingPoints: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	base := tn.refitSparse.Value() + tn.refitSparseInc.Value()
	var last tuner.Sample
	for i := 0; i < 80; i++ {
		s := synthSample(t, tn.kcat, tn.mcat, rng, "wl-sparse", i)
		if err := tn.Observe(s); err != nil {
			t.Fatal(err)
		}
		last = s
		if i >= 4 && i%5 == 0 {
			if _, err := tn.Recommend(tuner.Request{
				WorkloadID: "wl-sparse", Metrics: s.Metrics, Current: s.Config,
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := tn.Recommend(tuner.Request{
		WorkloadID: "wl-sparse", Metrics: last.Metrics, Current: last.Config,
	}); err != nil {
		t.Fatal(err)
	}
	if tn.fitCache.model == nil || !tn.fitCache.model.Sparse() {
		t.Fatal("surrogate did not switch to the sparse path above the threshold")
	}
	if tn.refitSparse.Value()+tn.refitSparseInc.Value() <= base {
		t.Fatal("sparse refit counters did not advance")
	}
}

// TestSparseTunerCheckpointRoundTrip pins that the sparse surrogate —
// including its fit-cache model — survives a tuner checkpoint cycle and
// keeps recommending identically.
func TestSparseTunerCheckpointRoundTrip(t *testing.T) {
	mk := func() *Tuner {
		tn, err := New(Options{
			Engine: knobs.Postgres, Candidates: 30, MaxSamplesPerFit: 200,
			UCBBeta: 0.5, TopKnobs: 6, Seed: 9,
			SparseThreshold: 40, InducingPoints: 16,
		})
		if err != nil {
			t.Fatal(err)
		}
		return tn
	}
	tn := mk()
	rng := rand.New(rand.NewSource(33))
	var last tuner.Sample
	for i := 0; i < 60; i++ {
		s := synthSample(t, tn.kcat, tn.mcat, rng, "wl-ckpt", i)
		if err := tn.Observe(s); err != nil {
			t.Fatal(err)
		}
		last = s
	}
	req := tuner.Request{WorkloadID: "wl-ckpt", Metrics: last.Metrics, Current: last.Config}
	if _, err := tn.Recommend(req); err != nil {
		t.Fatal(err)
	}
	if tn.fitCache.model == nil || !tn.fitCache.model.Sparse() {
		t.Fatal("precondition: fit cache should hold a sparse model")
	}
	st, err := tn.CheckpointState()
	if err != nil {
		t.Fatal(err)
	}
	tn2 := mk()
	if err := tn2.RestoreCheckpointState(st); err != nil {
		t.Fatal(err)
	}
	if tn2.fitCache.model == nil || !tn2.fitCache.model.Sparse() {
		t.Fatal("restored fit cache lost the sparse path")
	}
	r1, err := tn.Recommend(req)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := tn2.Recommend(req)
	if err != nil {
		t.Fatal(err)
	}
	r1.Cost, r2.Cost = 0, 0
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("restored tuner diverged:\n%v\nvs\n%v", r1, r2)
	}
}
