package bo

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"autodbaas/internal/knobs"
	"autodbaas/internal/metrics"
	"autodbaas/internal/simdb"
	"autodbaas/internal/tuner"
	"autodbaas/internal/workload"
)

// runConfig provisions a fresh engine, applies cfg, executes gen for a
// few windows and returns the resulting training sample.
func runConfig(t *testing.T, gen workload.Generator, cfg knobs.Config, seed int64) tuner.Sample {
	t.Helper()
	e, err := simdb.NewEngine(simdb.Options{
		Engine:      knobs.Postgres,
		Resources:   simdb.Resources{MemoryBytes: 16 * workload.GiB, VCPU: 4, DiskIOPS: 6000, DiskSSD: true},
		DBSizeBytes: gen.DBSizeBytes(),
		Seed:        seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg != nil {
		if err := e.ApplyConfig(cfg, simdb.ApplyReload); err != nil {
			t.Fatal(err)
		}
	}
	before := e.Snapshot()
	var last simdb.WindowStats
	for i := 0; i < 3; i++ {
		last, err = e.RunWindow(gen, time.Minute)
		if err != nil {
			t.Fatal(err)
		}
	}
	return tuner.Sample{
		WorkloadID: gen.Name(),
		Engine:     knobs.Postgres,
		Config:     e.Config(),
		Metrics:    metrics.Delta(before, e.Snapshot()),
		Objective:  last.Achieved,
		Quality:    true,
		At:         e.Now(),
	}
}

// randomConfig draws a random tunable config.
func randomConfig(rng *rand.Rand, kcat *knobs.Catalog) knobs.Config {
	names := kcat.TunableNames()
	vec := make([]float64, len(names))
	for i := range vec {
		vec[i] = rng.Float64()
	}
	return kcat.Denormalize(vec, names)
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{Engine: "oracle"}); err == nil {
		t.Fatal("unknown engine accepted")
	}
	tn, err := New(DefaultOptions(knobs.Postgres))
	if err != nil {
		t.Fatal(err)
	}
	if tn.Name() != "ottertune-bo" {
		t.Fatalf("name = %s", tn.Name())
	}
}

func TestObserveRejectsWrongEngine(t *testing.T) {
	tn, _ := New(DefaultOptions(knobs.Postgres))
	if err := tn.Observe(tuner.Sample{Engine: knobs.MySQL}); err == nil {
		t.Fatal("mysql sample accepted by postgres tuner")
	}
}

func TestRecommendBeforeTraining(t *testing.T) {
	tn, _ := New(DefaultOptions(knobs.Postgres))
	_, err := tn.Recommend(tuner.Request{Engine: knobs.Postgres, WorkloadID: "w"})
	if !errors.Is(err, tuner.ErrNotTrained) {
		t.Fatalf("err = %v", err)
	}
}

func TestWorkloadMappingSeparatesWorkloads(t *testing.T) {
	tn, _ := New(DefaultOptions(knobs.Postgres))
	tpcc := workload.NewTPCC(26*workload.GiB, 3300)
	tpch := workload.NewTPCH(24*workload.GiB, 2)
	rng := rand.New(rand.NewSource(1))
	kcat := knobs.PostgresCatalog()
	for i := 0; i < 6; i++ {
		tn.Observe(runConfig(t, tpcc, randomConfig(rng, kcat), int64(i)))
		tn.Observe(runConfig(t, tpch, randomConfig(rng, kcat), int64(100+i)))
	}
	probe := runConfig(t, tpcc, nil, 999)
	id, _, ok := tn.MapWorkload(probe.Metrics)
	if !ok || id != "tpcc" {
		t.Fatalf("TPCC probe mapped to %q (ok=%v)", id, ok)
	}
	probe2 := runConfig(t, tpch, nil, 998)
	id2, _, _ := tn.MapWorkload(probe2.Metrics)
	if id2 != "tpch" {
		t.Fatalf("TPCH probe mapped to %q", id2)
	}
}

func TestRankKnobsFindsInfluentialKnob(t *testing.T) {
	tn, _ := New(DefaultOptions(knobs.Postgres))
	kcat := knobs.PostgresCatalog()
	rng := rand.New(rand.NewSource(2))
	// Synthetic: objective responds only to work_mem (log-normalized).
	var samples []tuner.Sample
	for i := 0; i < 80; i++ {
		cfg := randomConfig(rng, kcat)
		u := kcat.Normalize(cfg, []string{"work_mem"})[0]
		samples = append(samples, tuner.Sample{
			Engine: knobs.Postgres, WorkloadID: "synthetic",
			Config: cfg, Objective: 1000*u + rng.NormFloat64()*5,
		})
	}
	ranked, err := tn.RankKnobs(samples)
	if err != nil {
		t.Fatal(err)
	}
	if ranked[0] != "work_mem" {
		t.Fatalf("top knob = %s, want work_mem (full ranking: %v)", ranked[0], ranked[:3])
	}
	if _, err := tn.RankKnobs(samples[:2]); !errors.Is(err, tuner.ErrNotTrained) {
		t.Fatal("tiny sample set should be ErrNotTrained")
	}
}

func TestRecommendImprovesThroughput(t *testing.T) {
	// Closed loop: train on random configs of a spill-prone workload,
	// then verify the recommendation beats the default configuration.
	// TopKnobs=0: search the full tunable space — with a knob ranking
	// that misses a load-bearing knob, the recommendation would freeze
	// it at its (bad) current value.
	tn, err := New(Options{Engine: knobs.Postgres, MaxSamplesPerFit: 200, Candidates: 800, UCBBeta: 0.5, TopKnobs: 0, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// TPCH is capacity-bound: throughput responds to work_mem (spills),
	// parallel workers and prefetch depth — the knobs under search.
	gen := workload.NewTPCH(24*workload.GiB, 2)
	rng := rand.New(rand.NewSource(3))
	kcat := knobs.PostgresCatalog()
	for i := 0; i < 30; i++ {
		tn.Observe(runConfig(t, gen, randomConfig(rng, kcat), int64(i)))
	}
	probe := runConfig(t, gen, nil, 777)
	rec, err := tn.Recommend(tuner.Request{
		InstanceID:  "db-1",
		Engine:      knobs.Postgres,
		WorkloadID:  gen.Name(),
		Metrics:     probe.Metrics,
		Current:     probe.Config,
		MemoryBytes: 16 * workload.GiB,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.TrainedOn < 4 || rec.Cost <= 0 {
		t.Fatalf("recommendation metadata: %+v", rec)
	}
	tuned := runConfig(t, gen, rec.Config, 777)
	if !(tuned.Objective > probe.Objective*1.02) {
		t.Fatalf("tuned throughput %.0f not above default %.0f", tuned.Objective, probe.Objective)
	}
}

func TestRecommendRespectsMemoryBudget(t *testing.T) {
	tn, _ := New(Options{Engine: knobs.Postgres, Seed: 4, Candidates: 100})
	kcat := knobs.PostgresCatalog()
	rng := rand.New(rand.NewSource(4))
	gen := workload.NewTPCC(10*workload.GiB, 2000)
	for i := 0; i < 8; i++ {
		tn.Observe(runConfig(t, gen, randomConfig(rng, kcat), int64(i)))
	}
	mem := 2.0 * workload.GiB
	rec, err := tn.Recommend(tuner.Request{
		Engine: knobs.Postgres, WorkloadID: gen.Name(),
		Metrics: metrics.Snapshot{}, MemoryBytes: mem,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := kcat.CheckMemoryBudget(rec.Config, knobs.MemoryBudget{TotalBytes: mem, WorkMemSessions: 8}); err != nil {
		t.Fatalf("recommendation busts a 2GB instance: %v", err)
	}
}

func TestThrottleClassNarrowsSearch(t *testing.T) {
	tn, _ := New(Options{Engine: knobs.Postgres, Seed: 5, Candidates: 100})
	kcat := knobs.PostgresCatalog()
	rng := rand.New(rand.NewSource(5))
	gen := workload.NewTPCC(10*workload.GiB, 2000)
	for i := 0; i < 8; i++ {
		tn.Observe(runConfig(t, gen, randomConfig(rng, kcat), int64(i)))
	}
	cls := knobs.BgWriter
	cur := kcat.DefaultConfig()
	rec, err := tn.Recommend(tuner.Request{
		Engine: knobs.Postgres, WorkloadID: gen.Name(),
		Metrics: metrics.Snapshot{}, Current: cur, ThrottleClass: &cls,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Knobs outside the throttled class must stay at their current values.
	for _, n := range kcat.NamesByClass(knobs.Memory) {
		if rec.Config[n] != cur[n] {
			t.Fatalf("memory knob %s changed by a bgwriter-scoped recommendation", n)
		}
	}
	changed := false
	for _, n := range kcat.NamesByClass(knobs.BgWriter) {
		if rec.Config[n] != cur[n] {
			changed = true
		}
	}
	if !changed {
		t.Fatal("bgwriter-scoped recommendation changed nothing")
	}
}

func TestBgWriterBaselineFromMappedWorkload(t *testing.T) {
	tn, _ := New(DefaultOptions(knobs.Postgres))
	// Cold tuner: no baseline available yet.
	if _, _, ok := tn.BgWriterBaseline(metrics.Snapshot{}); ok {
		t.Fatal("cold tuner produced a baseline")
	}
	gen := workload.NewTPCC(26*workload.GiB, 3300)
	rng := rand.New(rand.NewSource(8))
	kcat := knobs.PostgresCatalog()
	for i := 0; i < 6; i++ {
		s := runConfig(t, gen, randomConfig(rng, kcat), int64(i))
		s.Window = 3 * time.Minute
		if err := tn.Observe(s); err != nil {
			t.Fatal(err)
		}
	}
	probe := runConfig(t, gen, nil, 99)
	rate, lat, ok := tn.BgWriterBaseline(probe.Metrics)
	if !ok {
		t.Fatal("trained tuner produced no baseline")
	}
	if rate < 0 || lat <= 0 {
		t.Fatalf("baseline = %g ckpt/s at %g ms", rate, lat)
	}
}
