package knobs

import (
	"strings"
	"testing"
)

// FuzzKnobsConfigParse fuzzes the engine-config-file parser: arbitrary
// input must never panic, and any parse that yields a config the
// catalogue validates must round-trip through RenderConf/ParseConf
// bit-for-bit (the property the orchestrator's persistence relies on).
func FuzzKnobsConfigParse(f *testing.F) {
	pg, err := CatalogFor(Postgres)
	if err != nil {
		f.Fatal(err)
	}
	my, err := CatalogFor(MySQL)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(pg.RenderConf(pg.DefaultConfig()))
	f.Add(my.RenderConf(my.DefaultConfig()))
	f.Add("work_mem = 4MB\nshared_buffers = 1GB\n")
	f.Add("# comment only\n\n[mysqld]\n")
	f.Add("work_mem = 4MB # inline comment\n")
	f.Add("checkpoint_timeout = 5min\n")
	f.Add("work_mem 4MB\n")            // no '='
	f.Add("nonsense_knob = 12\n")      // unknown knob
	f.Add("work_mem = banana\n")       // bad value
	f.Add("work_mem = 5min\n")         // time suffix on byte knob
	f.Add("work_mem = nan\n")          // NaN (Validate must reject)
	f.Add("work_mem = inf\n")          // out of bounds
	f.Add("work_mem = '64MB'\n")       // quoted value
	f.Add("random_page_cost = 1.1s\n") // unit on plain knob
	f.Add(strings.Repeat("work_mem = 4MB\n", 100))

	f.Fuzz(func(t *testing.T, data string) {
		for _, cat := range []*Catalog{pg, my} {
			cfg, err := cat.ParseConf(strings.NewReader(data))
			if err != nil {
				continue // rejected input is fine; panics are not
			}
			if cat.Validate(cfg) != nil {
				continue // parseable but out-of-catalogue-bounds
			}
			rendered := cat.RenderConf(cfg)
			back, err := cat.ParseConf(strings.NewReader(rendered))
			if err != nil {
				t.Fatalf("render of valid config does not re-parse: %v\nrendered:\n%s", err, rendered)
			}
			if !back.Equal(cfg) {
				t.Fatalf("config did not round-trip:\n in:  %v\n out: %v\nrendered:\n%s", cfg, back, rendered)
			}
		}
	})
}
