package knobs

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestRenderConfPostgresShape(t *testing.T) {
	cat := PostgresCatalog()
	out := cat.RenderConf(Config{
		"work_mem":           4 * 1024 * 1024,
		"shared_buffers":     1 << 30,
		"checkpoint_timeout": 300_000,
		"random_page_cost":   4,
	})
	for _, want := range []string{
		"work_mem = 4MB",
		"shared_buffers = 1GB",
		"checkpoint_timeout = 300s",
		"random_page_cost = 4",
		"# memory knobs",
		"# bgwriter knobs",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "[mysqld]") {
		t.Fatal("postgres conf has a mysql section header")
	}
}

func TestRenderConfMySQLHeader(t *testing.T) {
	cat := MySQLCatalog()
	out := cat.RenderConf(Config{"sort_buffer_size": 256 * 1024})
	if !strings.HasPrefix(out, "[mysqld]\n") {
		t.Fatalf("missing section header:\n%s", out)
	}
	if !strings.Contains(out, "sort_buffer_size = 256kB") {
		t.Fatalf("value formatting wrong:\n%s", out)
	}
}

func TestParseConfRoundTrip(t *testing.T) {
	for _, cat := range []*Catalog{PostgresCatalog(), MySQLCatalog()} {
		cfg := cat.DefaultConfig()
		out := cat.RenderConf(cfg)
		back, err := cat.ParseConf(strings.NewReader(out))
		if err != nil {
			t.Fatalf("%s: parse: %v", cat.Engine, err)
		}
		if !back.Equal(cfg) {
			for k, v := range cfg {
				if back[k] != v {
					t.Fatalf("%s: %s: %g → %g", cat.Engine, k, v, back[k])
				}
			}
		}
	}
}

func TestParseConfHandlesCommentsAndQuotes(t *testing.T) {
	cat := PostgresCatalog()
	in := `
# tuned by autodbaas
work_mem = '64MB'   # per-op memory
checkpoint_timeout = 5min

[overridden section ignored]
random_page_cost = 1.1
`
	cfg, err := cat.ParseConf(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if cfg["work_mem"] != 64*1024*1024 {
		t.Fatalf("work_mem = %g", cfg["work_mem"])
	}
	if cfg["checkpoint_timeout"] != 300_000 {
		t.Fatalf("checkpoint_timeout = %g", cfg["checkpoint_timeout"])
	}
	if cfg["random_page_cost"] != 1.1 {
		t.Fatalf("random_page_cost = %g", cfg["random_page_cost"])
	}
}

func TestParseConfErrors(t *testing.T) {
	cat := PostgresCatalog()
	cases := []string{
		"no equals sign here",
		"bogus_knob = 1",
		"work_mem = notanumber",
		"work_mem = 5s",            // time suffix on a byte knob
		"checkpoint_timeout = 5MB", // byte suffix on a time knob
		"random_page_cost = 4MB",   // suffix on a plain knob
	}
	for _, in := range cases {
		if _, err := cat.ParseConf(strings.NewReader(in)); err == nil {
			t.Fatalf("accepted %q", in)
		}
	}
}

func TestDiff(t *testing.T) {
	cat := PostgresCatalog()
	a := Config{"work_mem": 1, "random_page_cost": 4}
	b := Config{"work_mem": 2, "random_page_cost": 4, "mystery": 9}
	d := cat.Diff(a, b)
	if len(d) != 2 || d[0] != "work_mem" || d[1] != "mystery" {
		t.Fatalf("diff = %v", d)
	}
	if got := cat.Diff(a, a); len(got) != 0 {
		t.Fatalf("self-diff = %v", got)
	}
}

// Property: RenderConf → ParseConf round-trips any valid random config.
func TestConfRoundTripProperty(t *testing.T) {
	for _, cat := range []*Catalog{PostgresCatalog(), MySQLCatalog()} {
		cat := cat
		names := cat.Names()
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			vec := make([]float64, len(names))
			for i := range vec {
				vec[i] = rng.Float64()
			}
			cfg := cat.Denormalize(vec, names)
			back, err := cat.ParseConf(strings.NewReader(cat.RenderConf(cfg)))
			if err != nil {
				return false
			}
			for k, v := range cfg {
				// Byte units round-trip exactly only on unit multiples;
				// allow a relative epsilon from decimal formatting.
				if diff := back[k] - v; diff > 1e-9*(1+v) || diff < -1e-9*(1+v) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Fatalf("%s: %v", cat.Engine, err)
		}
	}
}
