package knobs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// RenderConf renders a configuration in the engine's native config-file
// syntax — postgresql.conf for PostgreSQL, a [mysqld] section for MySQL.
// Byte-valued knobs are printed with the largest exact binary unit, so
// the output round-trips through ParseConf bit-for-bit. Knobs are
// ordered by class then catalogue order, with class headers, the way a
// DBA-maintained file would read.
func (c *Catalog) RenderConf(cfg Config) string {
	var b strings.Builder
	if c.Engine == MySQL {
		b.WriteString("[mysqld]\n")
	}
	for _, cls := range Classes() {
		names := c.NamesByClass(cls)
		var lines []string
		for _, n := range names {
			v, ok := cfg[n]
			if !ok {
				continue
			}
			lines = append(lines, fmt.Sprintf("%s = %s", n, c.defs[n].formatValue(v)))
		}
		if len(lines) == 0 {
			continue
		}
		fmt.Fprintf(&b, "# %s knobs\n", cls)
		for _, l := range lines {
			b.WriteString(l)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// formatValue renders a knob value with engine-file conventions.
func (d *Def) formatValue(v float64) string {
	switch d.Unit {
	case Bytes:
		return formatBytes(v)
	case Milliseconds:
		if v >= 1000 && math.Mod(v, 1000) == 0 {
			return fmt.Sprintf("%gs", v/1000)
		}
		return fmt.Sprintf("%gms", v)
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

func formatBytes(v float64) string {
	type unit struct {
		suffix string
		size   float64
	}
	units := []unit{{"GB", 1 << 30}, {"MB", 1 << 20}, {"kB", 1 << 10}}
	for _, u := range units {
		if v >= u.size && math.Mod(v, u.size) == 0 {
			return fmt.Sprintf("%g%s", v/u.size, u.suffix)
		}
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ParseConf parses a config file in the engine's syntax back into a
// Config. Unknown knobs and malformed lines are reported as errors with
// line numbers; comments, blank lines and a [mysqld] section header are
// skipped.
func (c *Catalog) ParseConf(r io.Reader) (Config, error) {
	cfg := Config{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "[") {
			continue
		}
		eq := strings.IndexByte(line, '=')
		if eq < 0 {
			return nil, fmt.Errorf("knobs: line %d: no '=' in %q", lineNo, line)
		}
		name := strings.TrimSpace(line[:eq])
		raw := strings.TrimSpace(line[eq+1:])
		// Strip trailing comments.
		if h := strings.IndexByte(raw, '#'); h >= 0 {
			raw = strings.TrimSpace(raw[:h])
		}
		raw = strings.Trim(raw, `'"`)
		d := c.defs[name]
		if d == nil {
			return nil, fmt.Errorf("knobs: line %d: %w: %q", lineNo, ErrUnknownKnob, name)
		}
		v, err := d.parseValue(raw)
		if err != nil {
			return nil, fmt.Errorf("knobs: line %d: %s: %w", lineNo, name, err)
		}
		cfg[name] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return cfg, nil
}

// parseValue parses an engine-file value with unit suffixes.
func (d *Def) parseValue(raw string) (float64, error) {
	lower := strings.ToLower(raw)
	mult := 1.0
	num := lower
	switch {
	case strings.HasSuffix(lower, "gb"):
		mult, num = 1<<30, lower[:len(lower)-2]
	case strings.HasSuffix(lower, "mb"):
		mult, num = 1<<20, lower[:len(lower)-2]
	case strings.HasSuffix(lower, "kb"):
		mult, num = 1<<10, lower[:len(lower)-2]
	case strings.HasSuffix(lower, "ms"):
		num = lower[:len(lower)-2]
	case strings.HasSuffix(lower, "min"):
		mult, num = 60_000, lower[:len(lower)-3]
	case strings.HasSuffix(lower, "s"):
		mult, num = 1000, lower[:len(lower)-1]
	}
	num = strings.TrimSpace(num)
	v, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, fmt.Errorf("bad value %q", raw)
	}
	switch d.Unit {
	case Bytes:
		if mult == 1000 { // a bare trailing 's' on a byte knob is bogus
			return 0, fmt.Errorf("time suffix on byte knob: %q", raw)
		}
		return v * mult, nil
	case Milliseconds:
		if mult == 1 || mult == 1000 || mult == 60_000 {
			return v * mult, nil
		}
		return 0, fmt.Errorf("byte suffix on time knob: %q", raw)
	default:
		if mult != 1 {
			return 0, fmt.Errorf("unit suffix on plain knob: %q", raw)
		}
		return v, nil
	}
}

// Diff returns the knobs whose values differ between two configs, in
// catalogue order — what a DBA would review before an apply.
func (c *Catalog) Diff(from, to Config) []string {
	var names []string
	for _, n := range c.order {
		fv, fok := from[n]
		tv, tok := to[n]
		if fok != tok || fv != tv {
			names = append(names, n)
		}
	}
	// Unknown-to-catalogue keys are appended sorted, so Diff is total.
	var extra []string
	for n := range to {
		if c.defs[n] == nil {
			extra = append(extra, n)
		}
	}
	sort.Strings(extra)
	return append(names, extra...)
}
