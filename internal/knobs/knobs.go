// Package knobs defines the configuration-knob surface of the simulated
// database engines. Knobs carry the classification the AutoDBaaS paper's
// Throttling Detection Engine is built around:
//
//   - Memory knobs (buffer pool, working areas) — resource-capped, the
//     buffer-pool knob additionally requires a restart ("non-tunable");
//   - Background-writer knobs (checkpointing / dirty-page writeback);
//   - Async/Planner-estimate knobs (parallel workers, cost constants).
//
// Both a PostgreSQL-like and a MySQL-like catalogue are provided,
// matching the two engines evaluated in the paper (PostgreSQL 9.6 and
// MySQL 5.6).
package knobs

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Class is the TDE knob classification.
type Class int

// Knob classes, in the order the paper introduces them.
const (
	Memory Class = iota
	BgWriter
	AsyncPlanner
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case Memory:
		return "memory"
	case BgWriter:
		return "bgwriter"
	case AsyncPlanner:
		return "async/planner"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Classes lists all knob classes.
func Classes() []Class { return []Class{Memory, BgWriter, AsyncPlanner} }

// Unit describes a knob's value domain.
type Unit int

// Knob units.
const (
	Bytes Unit = iota
	Milliseconds
	Count
	Ratio
)

// Def describes a single configuration knob.
type Def struct {
	Name        string
	Class       Class
	Unit        Unit
	Min         float64
	Max         float64
	Default     float64
	Restart     bool // true: "non-tunable" — applying requires a DB restart
	LogScale    bool // normalize on a log axis (byte-sized knobs)
	Description string
}

// Config maps knob name to value.
type Config map[string]float64

// Clone returns a deep copy of the config.
func (c Config) Clone() Config {
	out := make(Config, len(c))
	for k, v := range c {
		out[k] = v
	}
	return out
}

// Equal reports whether two configs hold identical values.
func (c Config) Equal(o Config) bool {
	if len(c) != len(o) {
		return false
	}
	for k, v := range c {
		ov, ok := o[k]
		if !ok || ov != v {
			return false
		}
	}
	return true
}

// Engine identifies a catalogue flavour.
type Engine string

// Supported engines.
const (
	Postgres Engine = "postgres"
	MySQL    Engine = "mysql"
)

// ErrUnknownKnob is wrapped by validation errors for unrecognized names.
var ErrUnknownKnob = errors.New("knobs: unknown knob")

// ErrOutOfBounds is wrapped by validation errors for out-of-range values.
var ErrOutOfBounds = errors.New("knobs: value out of bounds")

// ErrMemoryBudget is returned when the memory-knob sum rule A+B+C+D < X
// (section 4 of the paper) is violated.
var ErrMemoryBudget = errors.New("knobs: memory knobs exceed instance budget")

// Catalog is an ordered set of knob definitions for one engine.
type Catalog struct {
	Engine Engine
	defs   map[string]*Def
	order  []string
}

func newCatalog(engine Engine, defs []Def) *Catalog {
	c := &Catalog{Engine: engine, defs: make(map[string]*Def, len(defs))}
	for i := range defs {
		d := defs[i]
		c.defs[d.Name] = &d
		c.order = append(c.order, d.Name)
	}
	return c
}

const (
	kib = 1024.0
	mib = 1024 * kib
	gib = 1024 * mib
)

// PostgresCatalog returns the PostgreSQL-9.6-style knob catalogue.
func PostgresCatalog() *Catalog {
	return newCatalog(Postgres, []Def{
		// Memory knobs.
		{Name: "shared_buffers", Class: Memory, Unit: Bytes, Min: 16 * mib, Max: 48 * gib, Default: 128 * mib, Restart: true, LogScale: true,
			Description: "buffer pool holding hot table/index pages"},
		{Name: "work_mem", Class: Memory, Unit: Bytes, Min: 64 * kib, Max: 2 * gib, Default: 4 * mib, LogScale: true,
			Description: "per-operation memory for sorts, hashes and joins"},
		{Name: "maintenance_work_mem", Class: Memory, Unit: Bytes, Min: 1 * mib, Max: 8 * gib, Default: 64 * mib, LogScale: true,
			Description: "memory for index builds, VACUUM and ALTER TABLE"},
		{Name: "temp_buffers", Class: Memory, Unit: Bytes, Min: 800 * kib, Max: 4 * gib, Default: 8 * mib, LogScale: true,
			Description: "per-session buffers for temporary tables"},
		{Name: "wal_buffers", Class: Memory, Unit: Bytes, Min: 64 * kib, Max: 256 * mib, Default: 4 * mib, Restart: true, LogScale: true,
			Description: "shared memory for WAL not yet flushed"},
		// Background-writer knobs.
		{Name: "checkpoint_timeout", Class: BgWriter, Unit: Milliseconds, Min: 30_000, Max: 3_600_000, Default: 300_000,
			Description: "maximum time between automatic checkpoints"},
		{Name: "checkpoint_completion_target", Class: BgWriter, Unit: Ratio, Min: 0.1, Max: 0.9, Default: 0.5,
			Description: "fraction of the checkpoint interval to spread writes over"},
		{Name: "max_wal_size", Class: BgWriter, Unit: Bytes, Min: 32 * mib, Max: 64 * gib, Default: 1 * gib, LogScale: true,
			Description: "WAL volume triggering a requested checkpoint"},
		{Name: "bgwriter_delay", Class: BgWriter, Unit: Milliseconds, Min: 10, Max: 10_000, Default: 200,
			Description: "sleep between background-writer rounds"},
		{Name: "bgwriter_lru_maxpages", Class: BgWriter, Unit: Count, Min: 0, Max: 1000, Default: 100,
			Description: "max dirty pages written per background-writer round"},
		{Name: "wal_writer_delay", Class: BgWriter, Unit: Milliseconds, Min: 1, Max: 10_000, Default: 200,
			Description: "sleep between WAL-writer flush rounds"},
		// Async / planner-estimate knobs.
		{Name: "max_parallel_workers_per_gather", Class: AsyncPlanner, Unit: Count, Min: 0, Max: 64, Default: 0,
			Description: "parallel workers one Gather node may launch"},
		{Name: "max_worker_processes", Class: AsyncPlanner, Unit: Count, Min: 0, Max: 128, Default: 8, Restart: true,
			Description: "cluster-wide background worker pool"},
		{Name: "random_page_cost", Class: AsyncPlanner, Unit: Ratio, Min: 1.0, Max: 10.0, Default: 4.0,
			Description: "planner cost of a non-sequential page fetch"},
		{Name: "seq_page_cost", Class: AsyncPlanner, Unit: Ratio, Min: 0.1, Max: 4.0, Default: 1.0,
			Description: "planner cost of a sequential page fetch"},
		{Name: "effective_cache_size", Class: AsyncPlanner, Unit: Bytes, Min: 64 * mib, Max: 128 * gib, Default: 4 * gib, LogScale: true,
			Description: "planner's assumption of OS+DB cache available"},
		{Name: "effective_io_concurrency", Class: AsyncPlanner, Unit: Count, Min: 0, Max: 512, Default: 1,
			Description: "expected concurrently serviceable IO requests"},
		{Name: "cpu_tuple_cost", Class: AsyncPlanner, Unit: Ratio, Min: 0.001, Max: 1.0, Default: 0.01,
			Description: "planner cost of processing one tuple"},
	})
}

// MySQLCatalog returns the MySQL-5.6-style knob catalogue.
func MySQLCatalog() *Catalog {
	return newCatalog(MySQL, []Def{
		// Memory knobs.
		{Name: "innodb_buffer_pool_size", Class: Memory, Unit: Bytes, Min: 64 * mib, Max: 48 * gib, Default: 128 * mib, Restart: true, LogScale: true,
			Description: "InnoDB buffer pool holding hot pages"},
		{Name: "sort_buffer_size", Class: Memory, Unit: Bytes, Min: 32 * kib, Max: 2 * gib, Default: 256 * kib, LogScale: true,
			Description: "per-session sort area"},
		{Name: "join_buffer_size", Class: Memory, Unit: Bytes, Min: 128, Max: 1 * gib, Default: 256 * kib, LogScale: true,
			Description: "per-join block-nested-loop buffer"},
		{Name: "key_buffer_size", Class: Memory, Unit: Bytes, Min: 8, Max: 8 * gib, Default: 8 * mib, LogScale: true,
			Description: "MyISAM index cache (index builds)"},
		{Name: "tmp_table_size", Class: Memory, Unit: Bytes, Min: 1 * kib, Max: 8 * gib, Default: 16 * mib, LogScale: true,
			Description: "in-memory temporary-table ceiling"},
		// Background-writer knobs.
		{Name: "innodb_io_capacity", Class: BgWriter, Unit: Count, Min: 100, Max: 20_000, Default: 200,
			Description: "IOPS budget for background flushing"},
		{Name: "innodb_max_dirty_pages_pct", Class: BgWriter, Unit: Ratio, Min: 0, Max: 99, Default: 75,
			Description: "dirty-page percentage triggering aggressive flushing"},
		{Name: "innodb_log_file_size", Class: BgWriter, Unit: Bytes, Min: 4 * mib, Max: 16 * gib, Default: 48 * mib, Restart: true, LogScale: true,
			Description: "redo-log segment size (checkpoint spacing)"},
		{Name: "innodb_lru_scan_depth", Class: BgWriter, Unit: Count, Min: 100, Max: 10_000, Default: 1024,
			Description: "LRU pages scanned for flushing per second"},
		{Name: "innodb_flush_neighbors", Class: BgWriter, Unit: Count, Min: 0, Max: 2, Default: 1,
			Description: "flush contiguous dirty neighbours with each page"},
		// Async / planner-estimate knobs.
		{Name: "innodb_read_io_threads", Class: AsyncPlanner, Unit: Count, Min: 1, Max: 64, Default: 4, Restart: true,
			Description: "async read IO threads"},
		{Name: "innodb_write_io_threads", Class: AsyncPlanner, Unit: Count, Min: 1, Max: 64, Default: 4, Restart: true,
			Description: "async write IO threads"},
		{Name: "innodb_thread_concurrency", Class: AsyncPlanner, Unit: Count, Min: 0, Max: 1000, Default: 0,
			Description: "concurrent threads inside InnoDB (0 = unlimited)"},
		{Name: "eq_range_index_dive_limit", Class: AsyncPlanner, Unit: Count, Min: 0, Max: 10_000, Default: 10,
			Description: "equality ranges before the optimizer switches to statistics"},
		{Name: "optimizer_search_depth", Class: AsyncPlanner, Unit: Count, Min: 0, Max: 62, Default: 62,
			Description: "join-order search depth of the optimizer"},
	})
}

// CatalogFor returns the catalogue for the engine, or an error.
func CatalogFor(e Engine) (*Catalog, error) {
	switch e {
	case Postgres:
		return PostgresCatalog(), nil
	case MySQL:
		return MySQLCatalog(), nil
	default:
		return nil, fmt.Errorf("knobs: unsupported engine %q", e)
	}
}

// Def returns the definition for name, or nil if unknown.
func (c *Catalog) Def(name string) *Def { return c.defs[name] }

// Names returns knob names in catalogue order.
func (c *Catalog) Names() []string { return append([]string(nil), c.order...) }

// NamesByClass returns the knob names in cls, in catalogue order.
func (c *Catalog) NamesByClass(cls Class) []string {
	var out []string
	for _, n := range c.order {
		if c.defs[n].Class == cls {
			out = append(out, n)
		}
	}
	return out
}

// TunableNames returns knobs applicable without a restart.
func (c *Catalog) TunableNames() []string {
	var out []string
	for _, n := range c.order {
		if !c.defs[n].Restart {
			out = append(out, n)
		}
	}
	return out
}

// RestartNames returns "non-tunable" knobs (restart required to apply).
func (c *Catalog) RestartNames() []string {
	var out []string
	for _, n := range c.order {
		if c.defs[n].Restart {
			out = append(out, n)
		}
	}
	return out
}

// DefaultConfig returns every knob at its default value.
func (c *Catalog) DefaultConfig() Config {
	cfg := make(Config, len(c.order))
	for _, n := range c.order {
		cfg[n] = c.defs[n].Default
	}
	return cfg
}

// BufferPoolKnob returns the engine's primary (restart-required)
// buffer-pool knob name.
func (c *Catalog) BufferPoolKnob() string {
	if c.Engine == MySQL {
		return "innodb_buffer_pool_size"
	}
	return "shared_buffers"
}

// Validate checks that every entry names a known knob within bounds.
func (c *Catalog) Validate(cfg Config) error {
	names := make([]string, 0, len(cfg))
	for n := range cfg {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		d := c.defs[n]
		if d == nil {
			return fmt.Errorf("%w: %q", ErrUnknownKnob, n)
		}
		v := cfg[n]
		if v < d.Min || v > d.Max || math.IsNaN(v) {
			return fmt.Errorf("%w: %s = %g not in [%g, %g]", ErrOutOfBounds, n, v, d.Min, d.Max)
		}
	}
	return nil
}

// Clamp returns a copy of cfg with every known knob clamped into bounds;
// unknown knobs are dropped.
func (c *Catalog) Clamp(cfg Config) Config {
	out := make(Config, len(cfg))
	for n, v := range cfg {
		d := c.defs[n]
		if d == nil {
			continue
		}
		if math.IsNaN(v) {
			v = d.Default
		}
		if v < d.Min {
			v = d.Min
		}
		if v > d.Max {
			v = d.Max
		}
		out[n] = v
	}
	return out
}

// MemoryBudget describes the instance-level memory constraint the paper
// writes as A+B+C+D < X: the buffer pool plus expected working areas
// must fit inside the memory granted to the DB process.
type MemoryBudget struct {
	TotalBytes float64 // X: memory allocated to the DB process
	// WorkMemSessions is the multiplier applied to per-session working
	// areas (expected concurrently active sessions using them).
	WorkMemSessions float64
	// Headroom is the fraction of TotalBytes reserved for everything
	// else (connections, executor stacks, OS). Default 0.1 when zero.
	Headroom float64
}

// MemoryFootprint returns the budgeted memory use of cfg under b.
func (c *Catalog) MemoryFootprint(cfg Config, b MemoryBudget) float64 {
	sessions := b.WorkMemSessions
	if sessions <= 0 {
		sessions = 1
	}
	get := func(n string) float64 {
		if v, ok := cfg[n]; ok {
			return v
		}
		if d := c.defs[n]; d != nil {
			return d.Default
		}
		return 0
	}
	if c.Engine == MySQL {
		return get("innodb_buffer_pool_size") +
			sessions*(get("sort_buffer_size")+get("join_buffer_size")) +
			get("key_buffer_size") + get("tmp_table_size")
	}
	return get("shared_buffers") +
		sessions*get("work_mem") +
		get("maintenance_work_mem") + get("temp_buffers") + get("wal_buffers")
}

// CheckMemoryBudget enforces A+B+C+D < X with the configured headroom.
func (c *Catalog) CheckMemoryBudget(cfg Config, b MemoryBudget) error {
	head := b.Headroom
	if head <= 0 {
		head = 0.1
	}
	limit := b.TotalBytes * (1 - head)
	if used := c.MemoryFootprint(cfg, b); used >= limit {
		return fmt.Errorf("%w: footprint %.0f ≥ limit %.0f (total %.0f, headroom %.0f%%)",
			ErrMemoryBudget, used, limit, b.TotalBytes, head*100)
	}
	return nil
}

// FitMemoryBudget scales working-area memory knobs down until cfg fits
// the budget, preserving the buffer-pool knob (which is only changed in
// maintenance windows). It returns a new config.
func (c *Catalog) FitMemoryBudget(cfg Config, b MemoryBudget) Config {
	out := c.Clamp(cfg)
	if c.CheckMemoryBudget(out, b) == nil {
		return out
	}
	shrinkable := []string{}
	for _, n := range c.NamesByClass(Memory) {
		if n != c.BufferPoolKnob() {
			shrinkable = append(shrinkable, n)
		}
	}
	for i := 0; i < 64; i++ {
		if c.CheckMemoryBudget(out, b) == nil {
			return out
		}
		for _, n := range shrinkable {
			d := c.defs[n]
			v, ok := out[n]
			if !ok {
				v = d.Default
			}
			nv := v * 0.8
			if nv < d.Min {
				nv = d.Min
			}
			out[n] = nv
		}
	}
	return out
}

// Normalize maps the listed knobs of cfg into [0,1]^d (log scale where
// the definition asks for it). Missing knobs use their defaults.
func (c *Catalog) Normalize(cfg Config, names []string) []float64 {
	out := make([]float64, len(names))
	for i, n := range names {
		d := c.defs[n]
		if d == nil {
			continue
		}
		v, ok := cfg[n]
		if !ok {
			v = d.Default
		}
		out[i] = d.normalize(v)
	}
	return out
}

// Denormalize maps a [0,1]^d vector back to knob values for names.
func (c *Catalog) Denormalize(vec []float64, names []string) Config {
	cfg := make(Config, len(names))
	for i, n := range names {
		d := c.defs[n]
		if d == nil || i >= len(vec) {
			continue
		}
		cfg[n] = d.denormalize(vec[i])
	}
	return cfg
}

func (d *Def) normalize(v float64) float64 {
	if v < d.Min {
		v = d.Min
	}
	if v > d.Max {
		v = d.Max
	}
	if d.LogScale && d.Min > 0 {
		return (math.Log(v) - math.Log(d.Min)) / (math.Log(d.Max) - math.Log(d.Min))
	}
	if d.Max == d.Min {
		return 0
	}
	return (v - d.Min) / (d.Max - d.Min)
}

func (d *Def) denormalize(u float64) float64 {
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	var v float64
	if d.LogScale && d.Min > 0 {
		v = math.Exp(math.Log(d.Min) + u*(math.Log(d.Max)-math.Log(d.Min)))
	} else {
		v = d.Min + u*(d.Max-d.Min)
		if d.Unit == Count || d.Unit == Milliseconds {
			v = math.Round(v)
		}
	}
	// exp/log and rounding can drift a ulp outside the bounds.
	if v < d.Min {
		v = d.Min
	}
	if v > d.Max {
		v = d.Max
	}
	return v
}
