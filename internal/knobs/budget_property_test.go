package knobs

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: FitMemoryBudget converges for any random config on any
// instance size that can fit the buffer pool at all, and never touches
// the buffer-pool knob.
func TestFitMemoryBudgetConvergesProperty(t *testing.T) {
	for _, cat := range []*Catalog{PostgresCatalog(), MySQLCatalog()} {
		cat := cat
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			names := cat.Names()
			vec := make([]float64, len(names))
			for i := range vec {
				vec[i] = rng.Float64()
			}
			cfg := cat.Denormalize(vec, names)
			// Instance big enough to host the drawn buffer pool with
			// headroom; everything else must be shrunk to fit.
			pool := cfg[cat.BufferPoolKnob()]
			budget := MemoryBudget{
				TotalBytes:      pool*2 + 4*1024*1024*1024,
				WorkMemSessions: float64(1 + rng.Intn(16)),
			}
			fit := cat.FitMemoryBudget(cfg, budget)
			if fit[cat.BufferPoolKnob()] != pool {
				return false
			}
			return cat.CheckMemoryBudget(fit, budget) == nil
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Fatalf("%s: %v", cat.Engine, err)
		}
	}
}

// Property: memory footprint is monotone in each memory knob.
func TestFootprintMonotoneProperty(t *testing.T) {
	cat := PostgresCatalog()
	budget := MemoryBudget{TotalBytes: 1 << 34, WorkMemSessions: 8}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := cat.DefaultConfig()
		memNames := cat.NamesByClass(Memory)
		n := memNames[rng.Intn(len(memNames))]
		d := cat.Def(n)
		lo := d.Min + rng.Float64()*(d.Max-d.Min)
		hi := lo + rng.Float64()*(d.Max-lo)
		cfg[n] = lo
		flo := cat.MemoryFootprint(cfg, budget)
		cfg[n] = hi
		fhi := cat.MemoryFootprint(cfg, budget)
		return fhi >= flo
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
