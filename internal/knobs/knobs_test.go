package knobs

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCatalogsHaveAllClasses(t *testing.T) {
	for _, cat := range []*Catalog{PostgresCatalog(), MySQLCatalog()} {
		for _, cls := range Classes() {
			if len(cat.NamesByClass(cls)) == 0 {
				t.Fatalf("%s catalogue has no %s knobs", cat.Engine, cls)
			}
		}
	}
}

func TestCatalogFor(t *testing.T) {
	if c, err := CatalogFor(Postgres); err != nil || c.Engine != Postgres {
		t.Fatalf("CatalogFor(postgres) = %v, %v", c, err)
	}
	if c, err := CatalogFor(MySQL); err != nil || c.Engine != MySQL {
		t.Fatalf("CatalogFor(mysql) = %v, %v", c, err)
	}
	if _, err := CatalogFor("oracle"); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

func TestDefaultConfigValidates(t *testing.T) {
	for _, cat := range []*Catalog{PostgresCatalog(), MySQLCatalog()} {
		if err := cat.Validate(cat.DefaultConfig()); err != nil {
			t.Fatalf("%s defaults invalid: %v", cat.Engine, err)
		}
	}
}

func TestValidateRejectsUnknownAndOutOfBounds(t *testing.T) {
	cat := PostgresCatalog()
	if err := cat.Validate(Config{"bogus": 1}); !errors.Is(err, ErrUnknownKnob) {
		t.Fatalf("unknown knob err = %v", err)
	}
	if err := cat.Validate(Config{"work_mem": -5}); !errors.Is(err, ErrOutOfBounds) {
		t.Fatalf("oob err = %v", err)
	}
	if err := cat.Validate(Config{"work_mem": math.NaN()}); !errors.Is(err, ErrOutOfBounds) {
		t.Fatalf("NaN err = %v", err)
	}
}

func TestClamp(t *testing.T) {
	cat := PostgresCatalog()
	got := cat.Clamp(Config{"work_mem": -1, "random_page_cost": 99, "bogus": 3, "checkpoint_timeout": math.NaN()})
	if got["work_mem"] != cat.Def("work_mem").Min {
		t.Fatalf("work_mem clamped to %g", got["work_mem"])
	}
	if got["random_page_cost"] != cat.Def("random_page_cost").Max {
		t.Fatalf("random_page_cost clamped to %g", got["random_page_cost"])
	}
	if _, ok := got["bogus"]; ok {
		t.Fatal("unknown knob survived Clamp")
	}
	if got["checkpoint_timeout"] != cat.Def("checkpoint_timeout").Default {
		t.Fatalf("NaN clamped to %g, want default", got["checkpoint_timeout"])
	}
}

func TestTunableVsRestartPartition(t *testing.T) {
	for _, cat := range []*Catalog{PostgresCatalog(), MySQLCatalog()} {
		tun, res := cat.TunableNames(), cat.RestartNames()
		if len(tun)+len(res) != len(cat.Names()) {
			t.Fatalf("%s: partition sizes %d+%d != %d", cat.Engine, len(tun), len(res), len(cat.Names()))
		}
		for _, n := range res {
			if !cat.Def(n).Restart {
				t.Fatalf("%s listed as restart but is tunable", n)
			}
		}
		bp := cat.BufferPoolKnob()
		if !cat.Def(bp).Restart {
			t.Fatalf("buffer-pool knob %s must require restart", bp)
		}
		if cat.Def(bp).Class != Memory {
			t.Fatalf("buffer-pool knob %s must be a memory knob", bp)
		}
	}
}

func TestMemoryBudgetEnforced(t *testing.T) {
	cat := PostgresCatalog()
	budget := MemoryBudget{TotalBytes: 2 * 1024 * 1024 * 1024, WorkMemSessions: 10}
	cfg := cat.DefaultConfig()
	if err := cat.CheckMemoryBudget(cfg, budget); err != nil {
		t.Fatalf("defaults should fit 2GB: %v", err)
	}
	cfg["shared_buffers"] = 4 * 1024 * 1024 * 1024
	if err := cat.CheckMemoryBudget(cfg, budget); !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("4GB buffer in 2GB instance err = %v", err)
	}
}

func TestFitMemoryBudgetShrinksWorkingAreas(t *testing.T) {
	cat := PostgresCatalog()
	budget := MemoryBudget{TotalBytes: 1 * 1024 * 1024 * 1024, WorkMemSessions: 20}
	cfg := cat.DefaultConfig()
	cfg["work_mem"] = 512 * 1024 * 1024 // 20 sessions × 512MB ≫ 1GB
	fit := cat.FitMemoryBudget(cfg, budget)
	if err := cat.CheckMemoryBudget(fit, budget); err != nil {
		t.Fatalf("FitMemoryBudget result still over budget: %v", err)
	}
	if fit["shared_buffers"] != cfg["shared_buffers"] {
		t.Fatal("FitMemoryBudget must not touch the buffer pool knob")
	}
	if !(fit["work_mem"] < cfg["work_mem"]) {
		t.Fatal("work_mem not shrunk")
	}
}

func TestNormalizeDenormalizeRoundTrip(t *testing.T) {
	for _, cat := range []*Catalog{PostgresCatalog(), MySQLCatalog()} {
		names := cat.Names()
		cfg := cat.DefaultConfig()
		vec := cat.Normalize(cfg, names)
		for i, u := range vec {
			if u < 0 || u > 1 {
				t.Fatalf("%s: normalized %s = %g outside [0,1]", cat.Engine, names[i], u)
			}
		}
		back := cat.Denormalize(vec, names)
		for _, n := range names {
			d := cat.Def(n)
			rel := math.Abs(back[n]-cfg[n]) / math.Max(1, math.Abs(cfg[n]))
			// Count/ms knobs round; allow one unit of slack.
			if rel > 0.01 && math.Abs(back[n]-cfg[n]) > 1 {
				t.Fatalf("%s: round trip %s: %g → %g (def %+v)", cat.Engine, n, cfg[n], back[n], d)
			}
		}
	}
}

func TestDenormalizeClampsInput(t *testing.T) {
	cat := PostgresCatalog()
	names := []string{"work_mem"}
	lo := cat.Denormalize([]float64{-3}, names)
	hi := cat.Denormalize([]float64{9}, names)
	if lo["work_mem"] != cat.Def("work_mem").Min {
		t.Fatalf("u<0 gave %g", lo["work_mem"])
	}
	if hi["work_mem"] != cat.Def("work_mem").Max {
		t.Fatalf("u>1 gave %g", hi["work_mem"])
	}
}

func TestConfigCloneAndEqual(t *testing.T) {
	a := Config{"x": 1, "y": 2}
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal")
	}
	b["x"] = 3
	if a.Equal(b) || a["x"] != 1 {
		t.Fatal("clone not independent")
	}
	if a.Equal(Config{"x": 1}) {
		t.Fatal("different sizes equal")
	}
	if a.Equal(Config{"x": 1, "z": 2}) {
		t.Fatal("different keys equal")
	}
}

func TestClassString(t *testing.T) {
	if Memory.String() != "memory" || BgWriter.String() != "bgwriter" || AsyncPlanner.String() != "async/planner" {
		t.Fatal("class strings wrong")
	}
	if Class(9).String() == "" {
		t.Fatal("unknown class should still print")
	}
}

// Property: Denormalize always yields a config that validates, for any
// input vector.
func TestDenormalizeAlwaysValidProperty(t *testing.T) {
	cat := PostgresCatalog()
	names := cat.Names()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vec := make([]float64, len(names))
		for i := range vec {
			vec[i] = rng.Float64()*4 - 2 // deliberately outside [0,1] sometimes
		}
		cfg := cat.Denormalize(vec, names)
		return cat.Validate(cfg) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Normalize is monotone in the knob value.
func TestNormalizeMonotoneProperty(t *testing.T) {
	cat := MySQLCatalog()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		names := cat.Names()
		n := names[rng.Intn(len(names))]
		d := cat.Def(n)
		a := d.Min + rng.Float64()*(d.Max-d.Min)
		b := d.Min + rng.Float64()*(d.Max-d.Min)
		if a > b {
			a, b = b, a
		}
		ua := cat.Normalize(Config{n: a}, []string{n})[0]
		ub := cat.Normalize(Config{n: b}, []string{n})[0]
		return ua <= ub+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
