package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := New(rng, 0, LayerSpec{Out: 1}); err == nil {
		t.Fatal("zero input width accepted")
	}
	if _, err := New(rng, 2); err == nil {
		t.Fatal("no layers accepted")
	}
	if _, err := New(rng, 2, LayerSpec{Out: -1}); err == nil {
		t.Fatal("negative layer width accepted")
	}
}

func TestForwardShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n, err := New(rng, 3, LayerSpec{Out: 5, Act: ReLU}, LayerSpec{Out: 2, Act: Linear})
	if err != nil {
		t.Fatal(err)
	}
	if n.InputDim() != 3 || n.OutputDim() != 2 {
		t.Fatalf("dims = %d/%d", n.InputDim(), n.OutputDim())
	}
	out, err := n.Forward([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("output len %d", len(out))
	}
	if _, err := n.Forward([]float64{1}); err == nil {
		t.Fatal("wrong input width accepted")
	}
}

func TestActivations(t *testing.T) {
	if ReLU.apply(-3) != 0 || ReLU.apply(3) != 3 {
		t.Fatal("ReLU wrong")
	}
	if math.Abs(Tanh.apply(0)) > 1e-12 || Sigmoid.apply(0) != 0.5 {
		t.Fatal("Tanh/Sigmoid wrong at 0")
	}
	if Linear.apply(7) != 7 || Linear.deriv(7) != 1 {
		t.Fatal("Linear wrong")
	}
	// deriv is expressed via output value y.
	if ReLU.deriv(2) != 1 || ReLU.deriv(0) != 0 {
		t.Fatal("ReLU deriv wrong")
	}
	y := Tanh.apply(0.8)
	if math.Abs(Tanh.deriv(y)-(1-y*y)) > 1e-12 {
		t.Fatal("Tanh deriv wrong")
	}
}

func TestTrainLearnsLinearFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n, err := New(rng, 2, LayerSpec{Out: 1, Act: Linear})
	if err != nil {
		t.Fatal(err)
	}
	xs := make([][]float64, 0, 64)
	ys := make([][]float64, 0, 64)
	for i := 0; i < 64; i++ {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		xs = append(xs, []float64{a, b})
		ys = append(ys, []float64{2*a - b + 0.5})
	}
	var loss float64
	for e := 0; e < 400; e++ {
		loss, err = n.TrainBatch(xs, ys, 0.05)
		if err != nil {
			t.Fatal(err)
		}
	}
	if loss > 1e-3 {
		t.Fatalf("final loss = %g, want < 1e-3", loss)
	}
}

func TestTrainLearnsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n, err := New(rng, 2, LayerSpec{Out: 8, Act: Tanh}, LayerSpec{Out: 1, Act: Sigmoid})
	if err != nil {
		t.Fatal(err)
	}
	xs := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	ys := [][]float64{{0}, {1}, {1}, {0}}
	for e := 0; e < 3000; e++ {
		if _, err := n.TrainBatch(xs, ys, 0.02); err != nil {
			t.Fatal(err)
		}
	}
	for i, x := range xs {
		out, _ := n.Forward(x)
		if math.Abs(out[0]-ys[i][0]) > 0.2 {
			t.Fatalf("XOR(%v) = %g, want %g", x, out[0], ys[i][0])
		}
	}
}

func TestInputGradientMatchesFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n, err := New(rng, 3, LayerSpec{Out: 6, Act: Tanh}, LayerSpec{Out: 1, Act: Linear})
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.3, -0.7, 1.1}
	grad, err := n.InputGradient(x)
	if err != nil {
		t.Fatal(err)
	}
	const h = 1e-6
	for i := range x {
		xp := append([]float64(nil), x...)
		xm := append([]float64(nil), x...)
		xp[i] += h
		xm[i] -= h
		op, _ := n.Forward(xp)
		om, _ := n.Forward(xm)
		fd := (op[0] - om[0]) / (2 * h)
		if math.Abs(fd-grad[i]) > 1e-5*(1+math.Abs(fd)) {
			t.Fatalf("dOut/dx[%d]: analytic %g vs finite-diff %g", i, grad[i], fd)
		}
	}
}

func TestInputGradientNeedsScalarOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n, _ := New(rng, 2, LayerSpec{Out: 2, Act: Linear})
	if _, err := n.InputGradient([]float64{1, 2}); err == nil {
		t.Fatal("vector-output InputGradient accepted")
	}
}

func TestCopyFromAndSoftUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a, _ := New(rng, 2, LayerSpec{Out: 3, Act: ReLU}, LayerSpec{Out: 1, Act: Linear})
	b, _ := New(rng, 2, LayerSpec{Out: 3, Act: ReLU}, LayerSpec{Out: 1, Act: Linear})
	if err := b.CopyFrom(a); err != nil {
		t.Fatal(err)
	}
	x := []float64{0.5, -0.5}
	oa, _ := a.Forward(x)
	ob, _ := b.Forward(x)
	if math.Abs(oa[0]-ob[0]) > 1e-15 {
		t.Fatalf("copied nets disagree: %g vs %g", oa[0], ob[0])
	}
	// Soft update toward a different net moves outputs toward it.
	c, _ := New(rng, 2, LayerSpec{Out: 3, Act: ReLU}, LayerSpec{Out: 1, Act: Linear})
	before, _ := b.Forward(x)
	oc, _ := c.Forward(x)
	if err := b.SoftUpdate(c, 0.5); err != nil {
		t.Fatal(err)
	}
	after, _ := b.Forward(x)
	if math.Abs(after[0]-oc[0]) >= math.Abs(before[0]-oc[0]) && math.Abs(before[0]-oc[0]) > 1e-9 {
		t.Fatalf("soft update did not move toward target: |%g−%g| vs |%g−%g|", after[0], oc[0], before[0], oc[0])
	}
	mismatch, _ := New(rng, 3, LayerSpec{Out: 1, Act: Linear})
	if err := b.CopyFrom(mismatch); err == nil {
		t.Fatal("architecture mismatch accepted")
	}
	if err := b.SoftUpdate(mismatch, 0.1); err == nil {
		t.Fatal("soft-update architecture mismatch accepted")
	}
}

func TestTrainBatchValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n, _ := New(rng, 2, LayerSpec{Out: 1, Act: Linear})
	if _, err := n.TrainBatch(nil, nil, 0.1); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, err := n.TrainBatch([][]float64{{1, 2}}, [][]float64{{1, 2}}, 0.1); err == nil {
		t.Fatal("wrong target width accepted")
	}
}
