// Package nn implements a minimal multi-layer perceptron with
// backpropagation and Adam, sufficient for the CDBTune-style RL tuner's
// actor and critic networks (internal/tuner/rl). It supports fully
// connected layers with ReLU, Tanh or Sigmoid activations and
// mean-squared-error training on mini-batches.
package nn

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Activation selects a layer non-linearity.
type Activation int

// Supported activations.
const (
	Linear Activation = iota
	ReLU
	Tanh
	Sigmoid
)

func (a Activation) apply(v float64) float64 {
	switch a {
	case ReLU:
		if v < 0 {
			return 0
		}
		return v
	case Tanh:
		return math.Tanh(v)
	case Sigmoid:
		return 1 / (1 + math.Exp(-v))
	default:
		return v
	}
}

// derivative w.r.t. pre-activation, expressed via the activated output y.
func (a Activation) deriv(y float64) float64 {
	switch a {
	case ReLU:
		if y > 0 {
			return 1
		}
		return 0
	case Tanh:
		return 1 - y*y
	case Sigmoid:
		return y * (1 - y)
	default:
		return 1
	}
}

// Layer is one fully connected layer.
type Layer struct {
	In, Out int
	Act     Activation
	W       []float64 // Out×In, row-major
	B       []float64 // Out

	// Adam state.
	mW, vW, mB, vB []float64
}

// Network is a feed-forward MLP.
type Network struct {
	Layers []*Layer
	step   int // Adam time step
}

// LayerSpec describes one layer for New.
type LayerSpec struct {
	Out int
	Act Activation
}

// New builds an MLP with the given input width and layer specs, with
// He-style random initialization from rng.
func New(rng *rand.Rand, in int, specs ...LayerSpec) (*Network, error) {
	if in <= 0 || len(specs) == 0 {
		return nil, errors.New("nn: need positive input width and at least one layer")
	}
	n := &Network{}
	prev := in
	for _, s := range specs {
		if s.Out <= 0 {
			return nil, fmt.Errorf("nn: layer width %d", s.Out)
		}
		l := &Layer{In: prev, Out: s.Out, Act: s.Act,
			W: make([]float64, s.Out*prev), B: make([]float64, s.Out),
			mW: make([]float64, s.Out*prev), vW: make([]float64, s.Out*prev),
			mB: make([]float64, s.Out), vB: make([]float64, s.Out)}
		scale := math.Sqrt(2.0 / float64(prev))
		for i := range l.W {
			l.W[i] = rng.NormFloat64() * scale
		}
		n.Layers = append(n.Layers, l)
		prev = s.Out
	}
	return n, nil
}

// InputDim returns the expected input width.
func (n *Network) InputDim() int { return n.Layers[0].In }

// OutputDim returns the output width.
func (n *Network) OutputDim() int { return n.Layers[len(n.Layers)-1].Out }

// Forward computes the network output for one input vector.
func (n *Network) Forward(x []float64) ([]float64, error) {
	acts, err := n.forwardAll(x)
	if err != nil {
		return nil, err
	}
	return acts[len(acts)-1], nil
}

// forwardAll returns the activation of every layer (index 0 = input).
func (n *Network) forwardAll(x []float64) ([][]float64, error) {
	if len(x) != n.InputDim() {
		return nil, fmt.Errorf("nn: input width %d, want %d", len(x), n.InputDim())
	}
	acts := make([][]float64, len(n.Layers)+1)
	acts[0] = x
	cur := x
	for li, l := range n.Layers {
		next := make([]float64, l.Out)
		for o := 0; o < l.Out; o++ {
			s := l.B[o]
			wrow := l.W[o*l.In : (o+1)*l.In]
			for i, xi := range cur {
				s += wrow[i] * xi
			}
			next[o] = l.Act.apply(s)
		}
		acts[li+1] = next
		cur = next
	}
	return acts, nil
}

// Gradients holds per-layer parameter gradients from a backward pass.
type Gradients struct {
	dW [][]float64
	dB [][]float64
}

// zeroGrads allocates gradient storage matching the network.
func (n *Network) zeroGrads() *Gradients {
	g := &Gradients{dW: make([][]float64, len(n.Layers)), dB: make([][]float64, len(n.Layers))}
	for i, l := range n.Layers {
		g.dW[i] = make([]float64, len(l.W))
		g.dB[i] = make([]float64, len(l.B))
	}
	return g
}

// backward accumulates gradients for one sample given dLoss/dOutput, and
// returns dLoss/dInput (used by DDPG's actor update through the critic).
func (n *Network) backward(acts [][]float64, dOut []float64, g *Gradients) []float64 {
	delta := append([]float64(nil), dOut...)
	for li := len(n.Layers) - 1; li >= 0; li-- {
		l := n.Layers[li]
		out := acts[li+1]
		in := acts[li]
		for o := range delta {
			delta[o] *= l.Act.deriv(out[o])
		}
		dIn := make([]float64, l.In)
		for o := 0; o < l.Out; o++ {
			do := delta[o]
			if do == 0 {
				continue
			}
			wrow := l.W[o*l.In : (o+1)*l.In]
			grow := g.dW[li][o*l.In : (o+1)*l.In]
			for i := range wrow {
				grow[i] += do * in[i]
				dIn[i] += do * wrow[i]
			}
			g.dB[li][o] += do
		}
		delta = dIn
	}
	return delta
}

// InputGradient returns dScalarOutput/dInput for a network with a single
// output unit, without updating parameters. Used to propagate the critic
// value back into the actor's action.
func (n *Network) InputGradient(x []float64) ([]float64, error) {
	if n.OutputDim() != 1 {
		return nil, fmt.Errorf("nn: InputGradient needs scalar output, have %d", n.OutputDim())
	}
	acts, err := n.forwardAll(x)
	if err != nil {
		return nil, err
	}
	g := n.zeroGrads()
	return n.backward(acts, []float64{1}, g), nil
}

// TrainBatch performs one Adam step on mean-squared error over the batch.
// It returns the pre-update batch MSE.
func (n *Network) TrainBatch(xs, ys [][]float64, lr float64) (float64, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return 0, fmt.Errorf("nn: batch sizes %d/%d", len(xs), len(ys))
	}
	g := n.zeroGrads()
	var loss float64
	inv := 1.0 / float64(len(xs))
	for bi, x := range xs {
		acts, err := n.forwardAll(x)
		if err != nil {
			return 0, err
		}
		out := acts[len(acts)-1]
		if len(ys[bi]) != len(out) {
			return 0, fmt.Errorf("nn: target width %d, want %d", len(ys[bi]), len(out))
		}
		dOut := make([]float64, len(out))
		for o := range out {
			d := out[o] - ys[bi][o]
			loss += d * d * inv
			dOut[o] = 2 * d * inv
		}
		n.backward(acts, dOut, g)
	}
	n.applyAdam(g, lr)
	return loss, nil
}

// TrainWithOutputGrad performs one Adam step given externally supplied
// dLoss/dOutput per sample (DDPG actor update: gradient comes from the
// critic rather than a target).
func (n *Network) TrainWithOutputGrad(xs, dOuts [][]float64, lr float64) error {
	if len(xs) == 0 || len(xs) != len(dOuts) {
		return fmt.Errorf("nn: batch sizes %d/%d", len(xs), len(dOuts))
	}
	g := n.zeroGrads()
	inv := 1.0 / float64(len(xs))
	for bi, x := range xs {
		acts, err := n.forwardAll(x)
		if err != nil {
			return err
		}
		dOut := make([]float64, len(dOuts[bi]))
		for o := range dOut {
			dOut[o] = dOuts[bi][o] * inv
		}
		n.backward(acts, dOut, g)
	}
	n.applyAdam(g, lr)
	return nil
}

const (
	adamBeta1 = 0.9
	adamBeta2 = 0.999
	adamEps   = 1e-8
)

func (n *Network) applyAdam(g *Gradients, lr float64) {
	n.step++
	c1 := 1 - math.Pow(adamBeta1, float64(n.step))
	c2 := 1 - math.Pow(adamBeta2, float64(n.step))
	for li, l := range n.Layers {
		adam(l.W, g.dW[li], l.mW, l.vW, lr, c1, c2)
		adam(l.B, g.dB[li], l.mB, l.vB, lr, c1, c2)
	}
}

func adam(w, dw, m, v []float64, lr, c1, c2 float64) {
	for i := range w {
		m[i] = adamBeta1*m[i] + (1-adamBeta1)*dw[i]
		v[i] = adamBeta2*v[i] + (1-adamBeta2)*dw[i]*dw[i]
		w[i] -= lr * (m[i] / c1) / (math.Sqrt(v[i]/c2) + adamEps)
	}
}

// LayerState is one layer's serializable parameters + Adam moments.
type LayerState struct {
	In  int        `json:"in"`  // shape, validated on restore
	Out int        `json:"out"` //
	Act Activation `json:"act"`
	W   []float64  `json:"w"`
	B   []float64  `json:"b"`
	MW  []float64  `json:"mw"`
	VW  []float64  `json:"vw"`
	MB  []float64  `json:"mb"`
	VB  []float64  `json:"vb"`
}

// NetworkState is a network's serializable state, including the Adam
// time step — restoring it resumes training bit-for-bit.
type NetworkState struct {
	Layers []LayerState `json:"layers"`
	Step   int          `json:"step"`
}

// CheckpointState captures all parameters and optimizer state.
func (n *Network) CheckpointState() NetworkState {
	st := NetworkState{Step: n.step, Layers: make([]LayerState, len(n.Layers))}
	for i, l := range n.Layers {
		st.Layers[i] = LayerState{
			In: l.In, Out: l.Out, Act: l.Act,
			W:  append([]float64(nil), l.W...),
			B:  append([]float64(nil), l.B...),
			MW: append([]float64(nil), l.mW...),
			VW: append([]float64(nil), l.vW...),
			MB: append([]float64(nil), l.mB...),
			VB: append([]float64(nil), l.vB...),
		}
	}
	return st
}

// RestoreCheckpointState overwrites all parameters and optimizer state.
// The network must have the architecture the state was captured from.
func (n *Network) RestoreCheckpointState(st NetworkState) error {
	if len(st.Layers) != len(n.Layers) {
		return fmt.Errorf("nn: restoring %d layers into %d-layer network", len(st.Layers), len(n.Layers))
	}
	for i, l := range n.Layers {
		ls := st.Layers[i]
		if ls.In != l.In || ls.Out != l.Out {
			return fmt.Errorf("nn: layer %d shape %dx%d, state %dx%d", i, l.In, l.Out, ls.In, ls.Out)
		}
		if len(ls.W) != len(l.W) || len(ls.B) != len(l.B) ||
			len(ls.MW) != len(l.mW) || len(ls.VW) != len(l.vW) ||
			len(ls.MB) != len(l.mB) || len(ls.VB) != len(l.vB) {
			return fmt.Errorf("nn: layer %d state vector lengths do not match the network", i)
		}
		l.Act = ls.Act
		copy(l.W, ls.W)
		copy(l.B, ls.B)
		copy(l.mW, ls.MW)
		copy(l.vW, ls.VW)
		copy(l.mB, ls.MB)
		copy(l.vB, ls.VB)
	}
	n.step = st.Step
	return nil
}

// CopyFrom copies all parameters from src (same architecture required).
func (n *Network) CopyFrom(src *Network) error {
	if len(n.Layers) != len(src.Layers) {
		return errors.New("nn: architecture mismatch")
	}
	for i, l := range n.Layers {
		sl := src.Layers[i]
		if l.In != sl.In || l.Out != sl.Out {
			return errors.New("nn: layer shape mismatch")
		}
		copy(l.W, sl.W)
		copy(l.B, sl.B)
	}
	return nil
}

// SoftUpdate blends parameters: θ ← τ·θsrc + (1−τ)·θ (DDPG target nets).
func (n *Network) SoftUpdate(src *Network, tau float64) error {
	if len(n.Layers) != len(src.Layers) {
		return errors.New("nn: architecture mismatch")
	}
	for i, l := range n.Layers {
		sl := src.Layers[i]
		for j := range l.W {
			l.W[j] = tau*sl.W[j] + (1-tau)*l.W[j]
		}
		for j := range l.B {
			l.B[j] = tau*sl.B[j] + (1-tau)*l.B[j]
		}
	}
	return nil
}
