package simclock

import (
	"testing"
	"time"
)

func TestVirtualNowStartsAtEpoch(t *testing.T) {
	v := NewVirtualAtZero()
	want := time.Date(2021, 3, 23, 0, 0, 0, 0, time.UTC)
	if got := v.Now(); !got.Equal(want) {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestVirtualAdvanceMovesNow(t *testing.T) {
	v := NewVirtualAtZero()
	start := v.Now()
	v.Advance(90 * time.Second)
	if got, want := v.Now().Sub(start), 90*time.Second; got != want {
		t.Fatalf("advanced %v, want %v", got, want)
	}
}

func TestVirtualAdvanceNegativeIsNoop(t *testing.T) {
	v := NewVirtualAtZero()
	start := v.Now()
	v.Advance(-time.Hour)
	if !v.Now().Equal(start) {
		t.Fatalf("negative advance moved the clock to %v", v.Now())
	}
}

func TestVirtualSleepReleasedByAdvance(t *testing.T) {
	v := NewVirtualAtZero()
	done := make(chan struct{})
	ready := make(chan struct{})
	go func() {
		close(ready)
		v.Sleep(5 * time.Minute)
		close(done)
	}()
	<-ready
	// Wait for the sleeper to register.
	for v.PendingWaiters() == 0 {
		time.Sleep(time.Millisecond)
	}
	v.Advance(4 * time.Minute)
	select {
	case <-done:
		t.Fatal("sleeper released before deadline")
	case <-time.After(10 * time.Millisecond):
	}
	v.Advance(2 * time.Minute)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("sleeper not released after deadline passed")
	}
}

func TestVirtualSleepNonPositiveReturnsImmediately(t *testing.T) {
	v := NewVirtualAtZero()
	doneZero := make(chan struct{})
	go func() { v.Sleep(0); v.Sleep(-time.Second); close(doneZero) }()
	select {
	case <-doneZero:
	case <-time.After(time.Second):
		t.Fatal("Sleep(0)/Sleep(-1s) blocked")
	}
}

func TestVirtualAfterDeliversDeadlineTime(t *testing.T) {
	v := NewVirtualAtZero()
	ch := v.After(10 * time.Second)
	v.Advance(time.Minute)
	got := <-ch
	want := time.Date(2021, 3, 23, 0, 0, 10, 0, time.UTC)
	if !got.Equal(want) {
		t.Fatalf("After delivered %v, want deadline %v", got, want)
	}
}

func TestVirtualAdvanceReleasesInDeadlineOrder(t *testing.T) {
	v := NewVirtualAtZero()
	delays := []time.Duration{3 * time.Second, time.Second, 2 * time.Second}
	chans := make([]<-chan time.Time, len(delays))
	for i, d := range delays {
		chans[i] = v.After(d)
	}
	fired := func(i int) bool {
		select {
		case <-chans[i]:
			return true
		default:
			return false
		}
	}
	v.Advance(time.Second) // deadline of waiter 1 only
	if fired(0) || !fired(1) || fired(2) {
		t.Fatal("after 1s only waiter 1 should fire")
	}
	v.Advance(time.Second) // now waiter 2
	if fired(0) || !fired(2) {
		t.Fatal("after 2s only waiter 2 should additionally fire")
	}
	v.Advance(time.Second) // now waiter 0
	if !fired(0) {
		t.Fatal("after 3s waiter 0 should fire")
	}
}

func TestVirtualAdvanceToPastIsNoop(t *testing.T) {
	v := NewVirtualAtZero()
	v.Advance(time.Hour)
	at := v.Now()
	v.AdvanceTo(at.Add(-time.Minute))
	if !v.Now().Equal(at) {
		t.Fatalf("AdvanceTo into the past moved clock to %v", v.Now())
	}
	v.AdvanceTo(at.Add(time.Minute))
	if got := v.Now().Sub(at); got != time.Minute {
		t.Fatalf("AdvanceTo future moved %v, want 1m", got)
	}
}

func TestRealClockMonotonicEnough(t *testing.T) {
	var c Real
	a := c.Now()
	c.Sleep(time.Millisecond)
	b := c.Now()
	if b.Before(a) {
		t.Fatalf("real clock went backwards: %v then %v", a, b)
	}
}
