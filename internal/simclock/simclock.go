// Package simclock provides virtual time for the AutoDBaaS simulators.
//
// Every component in this repository that needs to know "what time is it"
// or "wake me in five minutes" takes a Clock. Experiment harnesses use a
// Virtual clock so that a simulated day of database activity runs in
// milliseconds of wall time; the service binaries use a Real clock.
package simclock

import (
	"container/heap"
	"sync"
	"time"
)

// Clock is the minimal time surface used across the codebase.
type Clock interface {
	// Now returns the current (possibly virtual) time.
	Now() time.Time
	// Sleep blocks until d has elapsed on this clock.
	Sleep(d time.Duration)
}

// Real is a Clock backed by the system clock.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// Virtual is a manually advanced clock. It is safe for concurrent use.
//
// Components register interest in future instants via Sleep or After;
// a driver goroutine (usually the experiment harness) calls Advance to
// move time forward, releasing sleepers whose deadlines have passed.
type Virtual struct {
	mu      sync.Mutex
	now     time.Time
	waiters waiterHeap
}

// NewVirtual returns a Virtual clock starting at the given instant.
func NewVirtual(start time.Time) *Virtual {
	return &Virtual{now: start}
}

// NewVirtualAtZero returns a Virtual clock starting at a fixed reference
// epoch (2021-03-23 00:00 UTC, the EDBT'21 opening day) so experiments
// are reproducible without threading a start time everywhere.
func NewVirtualAtZero() *Virtual {
	return NewVirtual(time.Date(2021, 3, 23, 0, 0, 0, 0, time.UTC))
}

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Sleep implements Clock. It blocks until another goroutine Advances the
// clock past the deadline. Sleeping for a non-positive duration returns
// immediately.
func (v *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	<-v.After(d)
}

// After returns a channel that receives the (virtual) time once d has
// elapsed. The channel has capacity 1; the send never blocks Advance.
func (v *Virtual) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	v.mu.Lock()
	defer v.mu.Unlock()
	deadline := v.now.Add(d)
	if d <= 0 {
		ch <- v.now
		return ch
	}
	heap.Push(&v.waiters, &waiter{deadline: deadline, ch: ch})
	return ch
}

// Advance moves the clock forward by d, releasing every sleeper whose
// deadline falls inside the advanced window, in deadline order.
func (v *Virtual) Advance(d time.Duration) {
	if d < 0 {
		return
	}
	v.mu.Lock()
	target := v.now.Add(d)
	for len(v.waiters) > 0 && !v.waiters[0].deadline.After(target) {
		w := heap.Pop(&v.waiters).(*waiter)
		// Time observed by the sleeper is its own deadline, not the
		// advance target, matching real timer semantics.
		if v.now.Before(w.deadline) {
			v.now = w.deadline
		}
		w.ch <- v.now
	}
	v.now = target
	v.mu.Unlock()
}

// AdvanceTo moves the clock to the given instant if it is in the future.
func (v *Virtual) AdvanceTo(t time.Time) {
	v.mu.Lock()
	d := t.Sub(v.now)
	v.mu.Unlock()
	if d > 0 {
		v.Advance(d)
	}
}

// PendingWaiters reports how many sleepers are currently blocked.
func (v *Virtual) PendingWaiters() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.waiters)
}

type waiter struct {
	deadline time.Time
	ch       chan time.Time
}

type waiterHeap []*waiter

func (h waiterHeap) Len() int            { return len(h) }
func (h waiterHeap) Less(i, j int) bool  { return h[i].deadline.Before(h[j].deadline) }
func (h waiterHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *waiterHeap) Push(x interface{}) { *h = append(*h, x.(*waiter)) }
func (h *waiterHeap) Pop() interface{} {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return w
}
