package shard

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"autodbaas/internal/checkpoint"
	"autodbaas/internal/tenant"
)

// testConfig is the shard config the suite reuses; tuner defaults
// (postgres, 60 candidates) keep windows fast.
func testConfig(name string, seed int64) Config {
	return Config{Name: name, Seed: seed, Parallelism: 2}
}

// testSpec builds the i-th deterministic instance spec. Classes and
// plans cycle so cohorts mix workloads, like the core determinism
// suite's fleet.
func testSpec(i int) InstanceSpec {
	classes := []tenant.WorkloadSpec{
		{Class: "adulterated-tpcc", SizeGiB: 21, Rate: 3000, Mix: 0.8},
		{Class: "production"},
		{Class: "ycsb", SizeGiB: 10, Rate: 2000},
	}
	plans := []string{"m4.large", "t2.large", "m4.xlarge"}
	return InstanceSpec{
		ID:       fmt.Sprintf("db-%02d", i),
		Plan:     plans[i%len(plans)],
		Engine:   "postgres",
		Slaves:   i % 2,
		Seed:     100 + int64(i),
		Workload: classes[i%len(classes)],
		Agent:    AgentConfig{TickEveryMin: 5, GateSamples: true},
	}
}

func stepN(t *testing.T, sh Shard, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := sh.Step(5 * time.Minute); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
}

func TestLocalShardLifecycle(t *testing.T) {
	l, err := NewLocal(testConfig("s0", 42))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := l.AddInstance(testSpec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.AddInstance(testSpec(0)); err == nil {
		t.Fatal("duplicate instance accepted")
	}
	if err := l.AddInstance(InstanceSpec{ID: "bad", Engine: "oracle", Workload: tenant.WorkloadSpec{Class: "tpcc"}}); err == nil {
		t.Fatal("unknown engine accepted")
	}
	stepN(t, l, 6)
	c, err := l.Counters()
	if err != nil {
		t.Fatal(err)
	}
	if c.Windows != 6 || c.Instances != 3 || c.Generation != 3 {
		t.Fatalf("degenerate counters: %+v", c)
	}
	members, err := l.Members()
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 3 || members[0].ID != "db-00" {
		t.Fatalf("members = %+v", members)
	}
	if err := l.ResizeInstance("db-01", "m4.xlarge", 777, AgentConfig{TickEveryMin: 5, GateSamples: true}); err != nil {
		t.Fatal(err)
	}
	if got := l.Specs()[1]; got.Plan != "m4.xlarge" || got.Seed != 777 {
		t.Fatalf("resize did not update the spec: %+v", got)
	}
	if err := l.RemoveInstance("db-00"); err != nil {
		t.Fatal(err)
	}
	if err := l.RemoveInstance("db-00"); err == nil {
		t.Fatal("double remove accepted")
	}
	if got := len(l.Specs()); got != 2 {
		t.Fatalf("specs after remove = %d, want 2", got)
	}
	stepN(t, l, 2)
}

// TestLocalSnapshotRestoreReplay is the shard-scope determinism
// contract: snapshot at window k, restore into a fresh shard built
// from the same Config (the cohort rebuilds from the snapshot's specs
// section alone), replay to window n, and the fingerprint matches the
// uninterrupted run bit-for-bit.
func TestLocalSnapshotRestoreReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("shard replay sweep")
	}
	cfg := testConfig("s0", 42)
	cfg.FaultProfile = "medium"
	cfg.FaultSeed = 99

	run := func() *Local {
		l, err := NewLocal(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			if err := l.AddInstance(testSpec(i)); err != nil {
				t.Fatal(err)
			}
		}
		return l
	}

	full := run()
	stepN(t, full, 12)
	want, err := full.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}

	interrupted := run()
	stepN(t, interrupted, 6)
	snap, err := interrupted.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	// The restored shard starts EMPTY — no specs are re-declared; the
	// snapshot itself carries the cohort.
	resumed, err := NewLocal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if got := len(resumed.Specs()); got != 4 {
		t.Fatalf("restored cohort = %d specs, want 4", got)
	}
	stepN(t, resumed, 6)
	got, err := resumed.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("restore+replay diverged from uninterrupted run:\n  want: %+v\n  got:  %+v", want, got)
	}
}

// TestLocalRestoreRejectsForeignSnapshot: a container without the
// shard specs section is not a shard snapshot and must fail with
// ErrManifest before any state mutates.
func TestLocalRestoreRejectsForeignSnapshot(t *testing.T) {
	var buf bytes.Buffer
	if _, err := checkpoint.WriteRaw(&buf, checkpoint.Manifest{}, []checkpoint.RawSection{
		{Name: "coordinator", Payload: []byte(`{}`)},
	}); err != nil {
		t.Fatal(err)
	}
	l, err := NewLocal(testConfig("s0", 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Restore(buf.Bytes()); !errors.Is(err, checkpoint.ErrManifest) {
		t.Fatalf("err = %v, want ErrManifest", err)
	}
	// Bit rot inside the snapshot is caught by the container CRC.
	good, err := NewLocal(testConfig("s1", 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := good.AddInstance(testSpec(0)); err != nil {
		t.Fatal(err)
	}
	snap, err := good.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	snap[len(snap)/2] ^= 0x10
	if err := good.Restore(snap); err == nil {
		t.Fatal("corrupted snapshot accepted")
	}
}

// TestLocalExportImportMovesLiveState: the migration round trip. The
// migrated instance's engine config and monitor series survive the
// move byte-for-byte, and the destination can keep stepping it.
func TestLocalExportImportMovesLiveState(t *testing.T) {
	src, err := NewLocal(testConfig("a", 42))
	if err != nil {
		t.Fatal(err)
	}
	dst, err := NewLocal(testConfig("b", 43))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := src.AddInstance(testSpec(i)); err != nil {
			t.Fatal(err)
		}
	}
	stepN(t, src, 5)

	fpBefore, err := src.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	exp, err := src.ExportInstance("db-01")
	if err != nil {
		t.Fatal(err)
	}
	if exp.Spec.ID != "db-01" || len(exp.Section) == 0 {
		t.Fatalf("export = %+v", exp)
	}
	if _, err := src.ExportInstance("nope"); err == nil {
		t.Fatal("export of unknown instance accepted")
	}
	if err := dst.ImportInstance(exp); err != nil {
		t.Fatal(err)
	}
	if err := src.RemoveInstance("db-01"); err != nil {
		t.Fatal(err)
	}
	fpAfter, err := dst.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fpBefore.Configs["db-01"], fpAfter.Configs["db-01"]) {
		t.Errorf("config changed in flight:\n  before: %+v\n  after:  %+v", fpBefore.Configs["db-01"], fpAfter.Configs["db-01"])
	}
	if fpBefore.MonitorPoints["db-01"] != fpAfter.MonitorPoints["db-01"] {
		t.Errorf("monitor series changed in flight: %d -> %d", fpBefore.MonitorPoints["db-01"], fpAfter.MonitorPoints["db-01"])
	}
	stepN(t, dst, 2)

	// A tampered section must fail the import AND roll the provisioned
	// member back out of the destination.
	exp2, err := dst.ExportInstance("db-01")
	if err != nil {
		t.Fatal(err)
	}
	exp2.Meta.Plan = "t2.small" // lie about the topology pin
	third, err := NewLocal(testConfig("c", 44))
	if err != nil {
		t.Fatal(err)
	}
	if err := third.ImportInstance(exp2); !errors.Is(err, checkpoint.ErrManifest) {
		t.Fatalf("tampered import: err = %v, want ErrManifest", err)
	}
	if members, _ := third.Members(); len(members) != 0 {
		t.Fatalf("failed import left %d members behind", len(members))
	}
}
