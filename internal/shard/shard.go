// Package shard is the distributed control plane's shard runtime: the
// contract a cohort of database service instances is driven through —
// step one observation window, add/remove/resize members, emit and
// ingest checkpoint sections, report counters — with two
// implementations. Local extracts today's in-process machinery from
// core.System; Remote speaks a length-prefixed, CRC-framed RPC protocol
// to a worker process (cmd/autodbaas -worker) hosting a Local on the
// far side. A Coordinator partitions the fleet across any mix of the
// two and performs the same deterministic ordered merge across shards
// that core.Step performs across goroutines, so a fixed (seed,
// topology, shard map) produces bit-for-bit the same fleet fingerprint
// whether the fleet runs as one process or N worker processes, clean or
// under fault injection, across worker kill/restore.
//
// Everything crossing the shard boundary is declarative and
// JSON-serializable: instance specs name a workload class instead of
// carrying a live generator, shard configs name a fault profile instead
// of carrying an injector, and rebalancing an instance between shards
// reuses the checkpoint container's "instance/<id>" section as the wire
// format (checkpoint out of one shard, restore into the other,
// resubscribe the repository fan-out — no second serialization format).
package shard

import (
	"fmt"
	"time"

	"autodbaas/internal/core"
	"autodbaas/internal/knobs"
	"autodbaas/internal/repository"
	"autodbaas/internal/safety"
	"autodbaas/internal/tenant"
)

// AgentConfig is the serializable slice of agent.Options a shard can
// rebuild an on-VM tuning agent from.
type AgentConfig struct {
	// TickEveryMin is the TDE execution period in virtual minutes
	// (0: the agent default).
	TickEveryMin int `json:"tick_every_min,omitempty"`
	// GateSamples uploads training samples only on detected throttles.
	GateSamples bool `json:"gate_samples,omitempty"`
	// Periodic switches the agent to the periodic-request baseline; the
	// shard wires its own director as the tuning sink.
	Periodic bool `json:"periodic,omitempty"`
	// PeriodicEveryMin is the periodic request period in virtual
	// minutes (0: the agent default).
	PeriodicEveryMin int `json:"periodic_every_min,omitempty"`
}

// InstanceSpec declares one database service instance. Unlike
// core.InstanceSpec it carries no live objects: the workload is named
// by class and parameters (tenant.WorkloadSpec) and materialized inside
// the owning shard, so the same spec provisions identically in-process
// or across an RPC boundary.
type InstanceSpec struct {
	ID       string              `json:"id"`
	Plan     string              `json:"plan"`
	Engine   string              `json:"engine"` // "postgres" | "mysql"
	Slaves   int                 `json:"slaves,omitempty"`
	Seed     int64               `json:"seed"`
	Workload tenant.WorkloadSpec `json:"workload"`
	Agent    AgentConfig         `json:"agent"`
}

// Validate rejects malformed specs with an error naming the field.
func (sp InstanceSpec) Validate() error {
	if sp.ID == "" {
		return fmt.Errorf("shard: instance spec needs an ID")
	}
	switch knobs.Engine(sp.Engine) {
	case knobs.Postgres, knobs.MySQL:
	default:
		return fmt.Errorf("shard: instance %q: unknown engine %q (want postgres|mysql)", sp.ID, sp.Engine)
	}
	if err := sp.Workload.Validate(); err != nil {
		return fmt.Errorf("shard: instance %q: %w", sp.ID, err)
	}
	return nil
}

// TunerConfig declares a shard's tuner pool — enough for a worker
// process to rebuild bit-for-bit the same BO tuners the in-process
// layout would build.
type TunerConfig struct {
	// Count is the number of BO tuner instances (default 1).
	Count int `json:"count,omitempty"`
	// Seed seeds tuner i with Seed+i (default: the shard seed).
	Seed int64 `json:"seed,omitempty"`
	// Engine is the knob catalogue the tuners train on (default
	// postgres).
	Engine string `json:"engine,omitempty"`
	// Candidates and MaxSamplesPerFit bound the BO search (defaults 60
	// and 60); UCBBeta is the acquisition trade-off (default 0.5).
	Candidates       int     `json:"candidates,omitempty"`
	MaxSamplesPerFit int     `json:"max_samples_per_fit,omitempty"`
	UCBBeta          float64 `json:"ucb_beta,omitempty"`
}

// Config declares one shard: its name in the shard map, the root seed,
// the in-shard step parallelism, the tuner pool, and the fault
// profile. It is the payload of the worker "init" RPC — a worker
// restarted after a crash is rebuilt from exactly this value before its
// snapshot is restored into it.
type Config struct {
	Name        string      `json:"name"`
	Seed        int64       `json:"seed"`
	Parallelism int         `json:"parallelism,omitempty"`
	Tuner       TunerConfig `json:"tuner"`
	// FaultProfile names the injection profile ("" disables; zero,
	// light, medium, heavy otherwise); FaultSeed seeds the injector
	// (0: the shard seed).
	FaultProfile string `json:"fault_profile,omitempty"`
	FaultSeed    int64  `json:"fault_seed,omitempty"`
	// Safety, when non-nil, enables the safe-tuning gate inside the
	// shard (internal/safety). JSON-serializable, so a worker process
	// rebuilds the same gate from its "init" RPC.
	Safety *safety.Options `json:"safety,omitempty"`
}

// StepResult is one shard's serializable outcome of stepping a window:
// the shard's window counter after the step, the throttle count, TDE
// event counts by kind, per-instance window P99 latency (what scenario
// SLO tracking is scored on), and per-instance errors (as strings —
// errors cross the RPC boundary by message).
type StepResult struct {
	Window    int                `json:"window"`
	Throttles int                `json:"throttles"`
	Events    map[string]int     `json:"events,omitempty"`
	P99Ms     map[string]float64 `json:"p99_ms,omitempty"`
	Errors    map[string]string  `json:"errors,omitempty"`
}

// Counters is a shard's control-plane counter snapshot.
type Counters struct {
	Windows         int `json:"windows"`
	Instances       int `json:"instances"`
	Generation      int `json:"generation"`
	Samples         int `json:"samples"`
	TuningRequests  int `json:"tuning_requests"`
	Recommendations int `json:"recommendations"`
	ApplyFailures   int `json:"apply_failures"`
	PlanUpgrades    int `json:"plan_upgrades"`
	CircuitSkips    int `json:"circuit_skips"`
	CircuitTrips    int `json:"circuit_trips"`
	Retries         int `json:"retries"`
	Escalations     int `json:"escalations"`

	// Safe-tuning gate totals (zero when the gate is off).
	SafetyVetoes     int `json:"safety_vetoes,omitempty"`
	SafetyCanaryRuns int `json:"safety_canary_runs,omitempty"`
	SafetyRollbacks  int `json:"safety_rollbacks,omitempty"`
	SafetyRegressing int `json:"safety_regressing_applies,omitempty"`

	Repository repository.Stats `json:"repository"`
}

// Accumulate folds another shard's counters into c (fleet totals;
// Generation and Windows accumulate too — the coordinator checks
// per-shard window agreement separately).
func (c *Counters) Accumulate(o Counters) {
	c.Windows += o.Windows
	c.Instances += o.Instances
	c.Generation += o.Generation
	c.Samples += o.Samples
	c.TuningRequests += o.TuningRequests
	c.Recommendations += o.Recommendations
	c.ApplyFailures += o.ApplyFailures
	c.PlanUpgrades += o.PlanUpgrades
	c.CircuitSkips += o.CircuitSkips
	c.CircuitTrips += o.CircuitTrips
	c.Retries += o.Retries
	c.Escalations += o.Escalations
	c.SafetyVetoes += o.SafetyVetoes
	c.SafetyCanaryRuns += o.SafetyCanaryRuns
	c.SafetyRollbacks += o.SafetyRollbacks
	c.SafetyRegressing += o.SafetyRegressing
	c.Repository.Samples += o.Repository.Samples
	c.Repository.Enqueued += o.Repository.Enqueued
	c.Repository.Delivered += o.Repository.Delivered
	c.Repository.Pending += o.Repository.Pending
	c.Repository.Subscribers += o.Repository.Subscribers
}

// Fingerprint is everything the shard-level determinism contract
// covers: the counter snapshot, every member with its join generation,
// each instance's current VM plan, final configuration and monitor
// series length.
type Fingerprint struct {
	Counters      Counters                `json:"counters"`
	Members       []core.Member           `json:"members"`
	Plans         map[string]string       `json:"plans"`
	Configs       map[string]knobs.Config `json:"configs"`
	MonitorPoints map[string]int          `json:"monitor_points"`
}

// InstanceExport is one instance leaving a shard: the declarative spec
// the destination re-provisions from, the "instance/<id>" checkpoint
// section holding its live state, and the topology pin the destination
// validates before restoring.
type InstanceExport struct {
	Spec    InstanceSpec `json:"spec"`
	Meta    InstanceMeta `json:"meta"`
	Section []byte       `json:"section"`
}

// InstanceMeta mirrors checkpoint.InstanceMeta across the RPC boundary.
type InstanceMeta struct {
	ID     string `json:"id"`
	Engine string `json:"engine"`
	Plan   string `json:"plan"`
	Slaves int    `json:"slaves"`
	Gen    int    `json:"gen,omitempty"`
}

// Shard is the runtime contract one cohort of the fleet is driven
// through. The coordinator serializes calls per shard (Step never
// overlaps membership changes on the same shard); distinct shards are
// fully independent and run concurrently.
type Shard interface {
	// Name returns the shard's name in the shard map.
	Name() string
	// AddInstance provisions a member from its declarative spec.
	AddInstance(spec InstanceSpec) error
	// RemoveInstance drains and deprovisions a member.
	RemoveInstance(id string) error
	// ResizeInstance re-provisions a member onto a new VM plan.
	ResizeInstance(id, plan string, seed int64, agentCfg AgentConfig) error
	// Members returns the cohort in onboarding order.
	Members() ([]core.Member, error)
	// Step advances every member one observation window.
	Step(dur time.Duration) (StepResult, error)
	// Counters reports the shard's control-plane counters.
	Counters() (Counters, error)
	// Fingerprint reports the shard's determinism fingerprint.
	Fingerprint() (Fingerprint, error)
	// Checkpoint serializes the shard's entire mutable state.
	Checkpoint() ([]byte, error)
	// Restore loads a Checkpoint into a freshly built shard with the
	// same Config; the cohort is rebuilt from the snapshot itself.
	Restore(snapshot []byte) error
	// ExportInstance checkpoints one member out for migration.
	ExportInstance(id string) (InstanceExport, error)
	// ImportInstance re-provisions an exported member here and restores
	// its state — the other half of a rebalance.
	ImportInstance(exp InstanceExport) error
	// Close releases the shard (a remote shard closes its connection;
	// the worker process survives for the next coordinator).
	Close() error
}
