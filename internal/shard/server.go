package shard

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Server hosts one Local shard behind the wire protocol — the body of
// a cmd/autodbaas -worker process. The worker starts empty; the
// coordinator's "init" RPC supplies the shard Config (and, after a
// crash, a "restore" follows with the shard's snapshot), so worker
// processes are fungible: nothing about the shard lives in worker
// flags.
type Server struct {
	mu    sync.Mutex
	local *Local
}

// NewServer returns an uninitialized worker server.
func NewServer() *Server { return &Server{} }

// Local returns the hosted shard (nil before "init").
func (s *Server) Local() *Local {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.local
}

// Serve accepts coordinator connections until the listener closes.
// Each connection is a strict request/response stream; connections are
// served concurrently but requests against the shard serialize, so a
// coordinator reconnecting after a network blip cannot interleave with
// a stale connection mid-call.
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go s.handleConn(conn)
	}
}

// handleConn runs one connection's request loop. A malformed frame
// kills the connection (the framing is unrecoverable once desynced);
// an application error travels back in the response envelope.
func (s *Server) handleConn(conn net.Conn) {
	defer conn.Close()
	for {
		typ, payload, err := ReadFrame(conn)
		if err != nil {
			return
		}
		if typ != FrameRequest {
			return
		}
		var req rpcRequest
		if err := json.Unmarshal(payload, &req); err != nil {
			return
		}
		resp := rpcResponse{ID: req.ID}
		result, err := s.dispatch(req.Method, req.Params)
		if err != nil {
			resp.Err = err.Error()
		} else if result != nil {
			raw, err := json.Marshal(result)
			if err != nil {
				resp.Err = fmt.Sprintf("shard: encode %s result: %v", req.Method, err)
			} else {
				resp.Result = raw
			}
		}
		out, err := json.Marshal(resp)
		if err != nil {
			return
		}
		if err := WriteFrame(conn, FrameResponse, out); err != nil {
			return
		}
	}
}

// shard returns the hosted Local, or an error for pre-init calls.
func (s *Server) shard() (*Local, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.local == nil {
		return nil, errors.New("shard: worker not initialized (no init call yet)")
	}
	return s.local, nil
}

// RPC parameter envelopes.
type idParams struct {
	ID string `json:"id"`
}

type resizeParams struct {
	ID    string      `json:"id"`
	Plan  string      `json:"plan"`
	Seed  int64       `json:"seed"`
	Agent AgentConfig `json:"agent"`
}

type stepParams struct {
	DurNS int64 `json:"dur_ns"`
}

type snapshotParams struct {
	Snapshot []byte `json:"snapshot"`
}

// dispatch executes one RPC. Every method the Shard interface exposes
// has a wire twin; "init" and "ping" are worker lifecycle.
func (s *Server) dispatch(method string, params json.RawMessage) (any, error) {
	switch method {
	case "ping":
		return struct{}{}, nil

	case "init":
		var cfg Config
		if err := json.Unmarshal(params, &cfg); err != nil {
			return nil, fmt.Errorf("shard: init params: %w", err)
		}
		l, err := NewLocal(cfg)
		if err != nil {
			return nil, err
		}
		s.mu.Lock()
		s.local = l
		s.mu.Unlock()
		return struct{}{}, nil

	case "config":
		l, err := s.shard()
		if err != nil {
			return nil, err
		}
		return l.Config(), nil

	case "add":
		l, err := s.shard()
		if err != nil {
			return nil, err
		}
		var spec InstanceSpec
		if err := json.Unmarshal(params, &spec); err != nil {
			return nil, fmt.Errorf("shard: add params: %w", err)
		}
		return struct{}{}, l.AddInstance(spec)

	case "remove":
		l, err := s.shard()
		if err != nil {
			return nil, err
		}
		var p idParams
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, fmt.Errorf("shard: remove params: %w", err)
		}
		return struct{}{}, l.RemoveInstance(p.ID)

	case "resize":
		l, err := s.shard()
		if err != nil {
			return nil, err
		}
		var p resizeParams
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, fmt.Errorf("shard: resize params: %w", err)
		}
		return struct{}{}, l.ResizeInstance(p.ID, p.Plan, p.Seed, p.Agent)

	case "members":
		l, err := s.shard()
		if err != nil {
			return nil, err
		}
		members, err := l.Members()
		if err != nil {
			return nil, err
		}
		return members, nil

	case "step":
		l, err := s.shard()
		if err != nil {
			return nil, err
		}
		var p stepParams
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, fmt.Errorf("shard: step params: %w", err)
		}
		return l.Step(time.Duration(p.DurNS))

	case "counters":
		l, err := s.shard()
		if err != nil {
			return nil, err
		}
		return l.Counters()

	case "fingerprint":
		l, err := s.shard()
		if err != nil {
			return nil, err
		}
		return l.Fingerprint()

	case "checkpoint":
		l, err := s.shard()
		if err != nil {
			return nil, err
		}
		snap, err := l.Checkpoint()
		if err != nil {
			return nil, err
		}
		return snapshotParams{Snapshot: snap}, nil

	case "restore":
		l, err := s.shard()
		if err != nil {
			return nil, err
		}
		var p snapshotParams
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, fmt.Errorf("shard: restore params: %w", err)
		}
		return struct{}{}, l.Restore(p.Snapshot)

	case "export":
		l, err := s.shard()
		if err != nil {
			return nil, err
		}
		var p idParams
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, fmt.Errorf("shard: export params: %w", err)
		}
		return l.ExportInstance(p.ID)

	case "import":
		l, err := s.shard()
		if err != nil {
			return nil, err
		}
		var exp InstanceExport
		if err := json.Unmarshal(params, &exp); err != nil {
			return nil, fmt.Errorf("shard: import params: %w", err)
		}
		return struct{}{}, l.ImportInstance(exp)

	default:
		return nil, fmt.Errorf("shard: unknown method %q", method)
	}
}
