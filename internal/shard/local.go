package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"autodbaas/internal/checkpoint"
	"autodbaas/internal/core"
	"autodbaas/internal/faults"
	"autodbaas/internal/knobs"
	"autodbaas/internal/tuner"
	"autodbaas/internal/tuner/bo"
)

// specsExtra is the checkpoint extra section ("extra/" + specsExtra)
// holding the shard's declarative instance specs in onboarding order.
// It is what lets a restarted worker rebuild its cohort from the
// snapshot alone: Restore inspects the container, re-provisions every
// spec into a fresh system, then reads the snapshot into it — the
// rebuild-then-restore contract, self-contained per shard.
const specsExtra = "shard/specs"

// Local is the in-process Shard: one full vertical slice of the control
// plane — orchestrator, DFA, director, repository, tuner pool — owning
// one cohort. It is the same machinery a single-process deployment
// runs; the coordinator holds one Local per shard (or a Remote proxying
// to a Local inside a worker process) and merges across them.
type Local struct {
	cfg Config

	mu    sync.Mutex
	sys   *core.System
	specs []InstanceSpec // onboarding order, parallel to sys.Members()
}

// NewLocal builds an empty shard from its declarative config.
func NewLocal(cfg Config) (*Local, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("shard: config needs a name")
	}
	l := &Local{cfg: cfg}
	sys, err := l.buildSystem()
	if err != nil {
		return nil, err
	}
	l.sys = sys
	return l, nil
}

// buildSystem assembles a fresh core.System from the shard config —
// the construction half of the rebuild-then-restore contract, shared
// by NewLocal and Restore so both produce bit-for-bit the same layout.
func (l *Local) buildSystem() (*core.System, error) {
	tc := l.cfg.Tuner
	count := tc.Count
	if count <= 0 {
		count = 1
	}
	seed := tc.Seed
	if seed == 0 {
		seed = l.cfg.Seed
	}
	engine := knobs.Engine(tc.Engine)
	if engine == "" {
		engine = knobs.Postgres
	}
	candidates := tc.Candidates
	if candidates <= 0 {
		candidates = 60
	}
	maxFit := tc.MaxSamplesPerFit
	if maxFit <= 0 {
		maxFit = 60
	}
	beta := tc.UCBBeta
	if beta == 0 {
		beta = 0.5
	}
	tuners := make([]tuner.Tuner, 0, count)
	for i := 0; i < count; i++ {
		t, err := bo.New(bo.Options{Engine: engine, Candidates: candidates, MaxSamplesPerFit: maxFit, UCBBeta: beta, Seed: seed + int64(i)})
		if err != nil {
			return nil, fmt.Errorf("shard %s: %w", l.cfg.Name, err)
		}
		tuners = append(tuners, t)
	}
	var injector *faults.Injector
	if l.cfg.FaultProfile != "" {
		prof, err := faults.ParseProfile(l.cfg.FaultProfile)
		if err != nil {
			return nil, fmt.Errorf("shard %s: %w", l.cfg.Name, err)
		}
		fseed := l.cfg.FaultSeed
		if fseed == 0 {
			fseed = l.cfg.Seed
		}
		injector = faults.New(fseed, prof)
	}
	sys, err := core.NewSystemWithOptions(core.Options{Parallelism: l.cfg.Parallelism, Faults: injector, Safety: l.cfg.Safety}, tuners...)
	if err != nil {
		return nil, fmt.Errorf("shard %s: %w", l.cfg.Name, err)
	}
	sys.RegisterCheckpointExtra(specsExtra, l.saveSpecs, l.restoreSpecs)
	return sys, nil
}

func (l *Local) saveSpecs() ([]byte, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return json.Marshal(l.specs)
}

func (l *Local) restoreSpecs(p []byte) error {
	var specs []InstanceSpec
	if err := json.Unmarshal(p, &specs); err != nil {
		return fmt.Errorf("shard %s: specs section: %w", l.cfg.Name, err)
	}
	l.mu.Lock()
	l.specs = specs
	l.mu.Unlock()
	return nil
}

// Name implements Shard.
func (l *Local) Name() string { return l.cfg.Name }

// Config returns the declarative config the shard was built from.
func (l *Local) Config() Config { return l.cfg }

// System exposes the underlying deployment for in-process callers
// (status endpoints, tests). Remote shards have no equivalent.
func (l *Local) System() *core.System { return l.sys }

// Specs returns the cohort's declarative specs in onboarding order.
func (l *Local) Specs() []InstanceSpec {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]InstanceSpec(nil), l.specs...)
}

// AddInstance implements Shard: it materializes the declarative spec —
// workload generator, provision spec, agent options — and onboards the
// member, recording the spec for the snapshot's rebuild manifest.
func (l *Local) AddInstance(spec InstanceSpec) error {
	cs, err := spec.CoreSpec()
	if err != nil {
		return err
	}
	if _, err := l.sys.AddInstance(cs); err != nil {
		return err
	}
	l.mu.Lock()
	l.specs = append(l.specs, spec)
	l.mu.Unlock()
	return nil
}

// RemoveInstance implements Shard.
func (l *Local) RemoveInstance(id string) error {
	if err := l.sys.RemoveInstance(id); err != nil {
		return err
	}
	l.mu.Lock()
	for i, sp := range l.specs {
		if sp.ID == id {
			l.specs = append(l.specs[:i], l.specs[i+1:]...)
			break
		}
	}
	l.mu.Unlock()
	return nil
}

// ResizeInstance implements Shard, keeping the recorded spec in step so
// a snapshot taken after the resize rebuilds the post-resize cohort.
func (l *Local) ResizeInstance(id, plan string, seed int64, agentCfg AgentConfig) error {
	if _, err := l.sys.ResizeInstance(id, plan, seed, agentCfg.Options()); err != nil {
		return err
	}
	l.mu.Lock()
	for i := range l.specs {
		if l.specs[i].ID == id {
			l.specs[i].Plan = plan
			l.specs[i].Seed = seed
			l.specs[i].Agent = agentCfg
			break
		}
	}
	l.mu.Unlock()
	return nil
}

// Members implements Shard.
func (l *Local) Members() ([]core.Member, error) {
	return l.sys.Members(), nil
}

// Step implements Shard. The rich per-instance result (window stats,
// raw TDE events) stays inside the shard; what crosses the boundary is
// the serializable digest — raw events can carry NaN entropy values,
// which JSON cannot.
func (l *Local) Step(dur time.Duration) (StepResult, error) {
	res := l.sys.Step(dur)
	return StepDigest(l.sys.Windows(), res), nil
}

// Counters implements Shard.
func (l *Local) Counters() (Counters, error) {
	return CountersOf(l.sys), nil
}

// Fingerprint implements Shard.
func (l *Local) Fingerprint() (Fingerprint, error) {
	return FingerprintOf(l.sys), nil
}

// Checkpoint implements Shard: the full ADBC container for this shard's
// slice of the fleet, specs extra included.
func (l *Local) Checkpoint() ([]byte, error) {
	var buf bytes.Buffer
	if err := l.sys.Checkpoint(&buf); err != nil {
		return nil, fmt.Errorf("shard %s: %w", l.cfg.Name, err)
	}
	return buf.Bytes(), nil
}

// Restore implements Shard. The snapshot is self-contained: its specs
// extra names the cohort, so the shard rebuilds a fresh system from its
// own config, re-provisions every spec, and reads the snapshot into the
// rebuild. The previous system is discarded only after the restore
// fully succeeds, so a corrupt snapshot leaves the shard untouched.
func (l *Local) Restore(snapshot []byte) error {
	_, sections, err := checkpoint.Inspect(bytes.NewReader(snapshot))
	if err != nil {
		return fmt.Errorf("shard %s: %w", l.cfg.Name, err)
	}
	raw, ok := sections["extra/"+specsExtra]
	if !ok {
		return fmt.Errorf("%w: shard %s: snapshot lacks the %q section (not a shard snapshot)",
			checkpoint.ErrManifest, l.cfg.Name, "extra/"+specsExtra)
	}
	var specs []InstanceSpec
	if err := json.Unmarshal(raw, &specs); err != nil {
		return fmt.Errorf("shard %s: specs section: %w", l.cfg.Name, err)
	}

	fresh := &Local{cfg: l.cfg}
	sys, err := fresh.buildSystem()
	if err != nil {
		return err
	}
	fresh.sys = sys
	for _, sp := range specs {
		if err := fresh.AddInstance(sp); err != nil {
			return fmt.Errorf("shard %s: rebuild instance %q: %w", l.cfg.Name, sp.ID, err)
		}
	}
	if err := sys.Restore(bytes.NewReader(snapshot)); err != nil {
		return fmt.Errorf("shard %s: %w", l.cfg.Name, err)
	}
	l.mu.Lock()
	l.sys = sys
	l.specs = fresh.specs
	l.mu.Unlock()
	// Re-point the extra hooks at this Local (they were bound to the
	// scratch value during the rebuild).
	sys.RegisterCheckpointExtra(specsExtra, l.saveSpecs, l.restoreSpecs)
	return nil
}

// ExportInstance implements Shard: the migration-out half of a
// rebalance. The instance stays a member until RemoveInstance.
func (l *Local) ExportInstance(id string) (InstanceExport, error) {
	l.mu.Lock()
	var spec InstanceSpec
	found := false
	for _, sp := range l.specs {
		if sp.ID == id {
			spec, found = sp, true
			break
		}
	}
	l.mu.Unlock()
	if !found {
		return InstanceExport{}, fmt.Errorf("shard %s: no instance %q", l.cfg.Name, id)
	}
	payload, meta, err := l.sys.ExportInstanceSection(id)
	if err != nil {
		return InstanceExport{}, err
	}
	return InstanceExport{
		Spec:    spec,
		Meta:    InstanceMeta{ID: meta.ID, Engine: meta.Engine, Plan: meta.Plan, Slaves: meta.Slaves, Gen: meta.Gen},
		Section: payload,
	}, nil
}

// ImportInstance implements Shard: the migration-in half. The member is
// re-provisioned from its spec, then its live state is restored from
// the exported section. A restore failure rolls the provisioning back,
// so a bad payload never leaves a half-migrated member.
func (l *Local) ImportInstance(exp InstanceExport) error {
	if err := l.AddInstance(exp.Spec); err != nil {
		return err
	}
	meta := checkpoint.InstanceMeta{ID: exp.Meta.ID, Engine: exp.Meta.Engine, Plan: exp.Meta.Plan, Slaves: exp.Meta.Slaves, Gen: exp.Meta.Gen}
	if err := l.sys.ImportInstanceSection(exp.Spec.ID, meta, exp.Section); err != nil {
		_ = l.RemoveInstance(exp.Spec.ID)
		return err
	}
	return nil
}

// Close implements Shard. A local shard has nothing to release.
func (l *Local) Close() error { return nil }

var _ Shard = (*Local)(nil)
