package shard

import (
	"fmt"
	"time"

	"autodbaas/internal/agent"
	"autodbaas/internal/cluster"
	"autodbaas/internal/core"
	"autodbaas/internal/knobs"
)

// This file is the single conversion and digest path between the
// declarative shard vocabulary and the live core.System vocabulary.
// Both the flat (one-System) and sharded layouts call through here, so
// an instance provisioned from the same InstanceSpec — and the counters
// and fingerprints read back — are bit-for-bit identical no matter
// which layout hosts it.

// Options materializes agent.Options from the serializable config. The
// director default for periodic mode is wired inside core.
func (c AgentConfig) Options() agent.Options {
	opts := agent.Options{GateSamples: c.GateSamples}
	if c.TickEveryMin > 0 {
		opts.TickEvery = time.Duration(c.TickEveryMin) * time.Minute
	}
	if c.Periodic {
		opts.Mode = agent.ModePeriodic
		if c.PeriodicEveryMin > 0 {
			opts.PeriodicEvery = time.Duration(c.PeriodicEveryMin) * time.Minute
		}
	}
	return opts
}

// CoreSpec materializes the declarative spec into the live form
// core.System provisions from: the workload generator is built, the
// database size derived, the agent options expanded.
func (sp InstanceSpec) CoreSpec() (core.InstanceSpec, error) {
	if err := sp.Validate(); err != nil {
		return core.InstanceSpec{}, err
	}
	gen, err := sp.Workload.Build()
	if err != nil {
		return core.InstanceSpec{}, fmt.Errorf("shard: instance %q: %w", sp.ID, err)
	}
	return core.InstanceSpec{
		Provision: cluster.ProvisionSpec{
			ID:          sp.ID,
			Plan:        sp.Plan,
			Engine:      knobs.Engine(sp.Engine),
			DBSizeBytes: gen.DBSizeBytes(),
			Slaves:      sp.Slaves,
			Seed:        sp.Seed,
		},
		Workload: gen,
		Agent:    sp.Agent.Options(),
	}, nil
}

// StepDigest reduces a core step result to the serializable StepResult:
// event counts by kind and errors by message. Raw TDE events stay on
// the shard side of the boundary — they can carry NaN entropy values,
// which JSON cannot.
func StepDigest(window int, res core.StepResult) StepResult {
	out := StepResult{Window: window, Throttles: res.Throttles}
	for id, ws := range res.Windows {
		if out.P99Ms == nil {
			out.P99Ms = make(map[string]float64, len(res.Windows))
		}
		out.P99Ms[id] = ws.P99Ms
	}
	for _, evs := range res.Events {
		for _, ev := range evs {
			if out.Events == nil {
				out.Events = make(map[string]int)
			}
			out.Events[ev.Kind.String()]++
		}
	}
	for id, err := range res.Errors {
		if out.Errors == nil {
			out.Errors = make(map[string]string)
		}
		out.Errors[id] = err.Error()
	}
	return out
}

// CountersOf reads one deployment's control-plane counter snapshot.
func CountersOf(sys *core.System) Counters {
	c := Counters{
		Windows:      sys.Windows(),
		Instances:    sys.FleetSize(),
		Generation:   sys.Generation(),
		Samples:      sys.Repository.Len(),
		CircuitSkips: sys.Director.CircuitSkips(),
		CircuitTrips: sys.Director.CircuitTrips(),
		Retries:      sys.Orchestrator.Retries(),
		Escalations:  sys.Orchestrator.Escalations(),
		Repository:   sys.Repository.Stats(),
	}
	c.TuningRequests, c.Recommendations, c.ApplyFailures, c.PlanUpgrades = sys.Director.Counters()
	vetoes, canaries, rollbacks, regressing := sys.Director.SafetyTotals()
	c.SafetyVetoes = int(vetoes)
	c.SafetyCanaryRuns = int(canaries)
	c.SafetyRollbacks = int(rollbacks)
	c.SafetyRegressing = int(regressing)
	return c
}

// FingerprintOf reads one deployment's determinism fingerprint.
func FingerprintOf(sys *core.System) Fingerprint {
	fp := Fingerprint{
		Counters:      CountersOf(sys),
		Members:       sys.Members(),
		Plans:         make(map[string]string),
		Configs:       make(map[string]knobs.Config),
		MonitorPoints: make(map[string]int),
	}
	for _, a := range sys.Agents() {
		id := a.Instance().ID
		fp.Plans[id] = a.Instance().Plan.Name
		fp.Configs[id] = a.Instance().Replica.Master().Config()
		if m, ok := sys.Monitor(id); ok {
			fp.MonitorPoints[id] = m.Series("disk_latency_ms").Len()
		}
	}
	return fp
}
