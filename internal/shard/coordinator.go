package shard

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"autodbaas/internal/checkpoint"
	"autodbaas/internal/core"
	"autodbaas/internal/knobs"
)

// coordinatorSection is the coordinator's own control-plane section in
// a fleet snapshot; per-shard snapshots ride as "shard/<name>".
const (
	coordinatorSection = "coordinator"
	shardSectionPrefix = "shard/"
)

// FleetFingerprint is the determinism contract at fleet scope: the
// coordinator's window and cumulative throttle count plus every shard's
// full fingerprint, keyed by shard name. A fixed (seed, topology, shard
// map) must produce bit-for-bit the same value whether the shards are
// in-process or worker processes, clean or under fault injection,
// across worker kill/restore and coordinator checkpoint/restore.
type FleetFingerprint struct {
	Window    int                    `json:"window"`
	Throttles int                    `json:"throttles"`
	Shards    map[string]Fingerprint `json:"shards"`
}

// Merged flattens the fleet fingerprint into one shard-shaped
// fingerprint: counters accumulate, and the per-instance configs,
// monitor series lengths and members union (cohorts are disjoint).
// Members sort by ID, so the merge is independent of shard iteration
// order. Counters.Windows sums across shards — use Window for the
// fleet's step count.
func (f FleetFingerprint) Merged() Fingerprint {
	out := Fingerprint{
		Plans:         make(map[string]string),
		Configs:       make(map[string]knobs.Config),
		MonitorPoints: make(map[string]int),
	}
	names := make([]string, 0, len(f.Shards))
	for name := range f.Shards {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		sfp := f.Shards[name]
		out.Counters.Accumulate(sfp.Counters)
		out.Members = append(out.Members, sfp.Members...)
		for id, plan := range sfp.Plans {
			out.Plans[id] = plan
		}
		for id, cfg := range sfp.Configs {
			out.Configs[id] = cfg
		}
		for id, n := range sfp.MonitorPoints {
			out.MonitorPoints[id] = n
		}
	}
	sort.Slice(out.Members, func(i, j int) bool { return out.Members[i].ID < out.Members[j].ID })
	return out
}

// Coordinator drives a fixed set of named shards as one fleet: instance
// placement, the fan-out/merge of every window step, rebalancing,
// nested fleet snapshots and per-shard crash recovery. Shards are fully
// independent vertical slices — each owns its orchestrator, director,
// repository and tuner pool for its cohort — so the cross-shard merge
// has no ordering hazards and the fleet result is the deterministic
// union of per-shard results.
type Coordinator struct {
	mu     sync.Mutex
	shards []Shard // shard-map order; fixed for the coordinator's life
	byName map[string]Shard
	assign map[string]string // instance ID -> shard name
	order  []string          // fleet-wide onboarding order

	windows   int
	throttles int // cumulative across all windows

	// durations logs every window's length since the last
	// SnapshotShards — with per-shard snapshots it is the recovery
	// recipe: restore the dead shard's snapshot, replay these windows.
	durations  []time.Duration
	snaps      map[string][]byte
	snapWindow int
	// dirty marks shards whose membership changed after the last
	// SnapshotShards; their snapshot + replay recipe is stale.
	dirty map[string]bool

	// extras are caller sections riding in fleet snapshots as
	// "extra/<name>" — the coordinator twin of
	// core.System.RegisterCheckpointExtra.
	extras []coordExtra
}

// coordExtra is one registered snapshot extra.
type coordExtra struct {
	name    string
	save    func() ([]byte, error)
	restore func([]byte) error
}

// NewCoordinator assembles a coordinator over the given shards. The
// slice order is the shard map order — merge order, placement order and
// snapshot section order all derive from it, so it must be the same on
// every run for the determinism contract to hold.
func NewCoordinator(shards ...Shard) (*Coordinator, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("shard: coordinator needs at least one shard")
	}
	c := &Coordinator{
		byName: make(map[string]Shard, len(shards)),
		assign: make(map[string]string),
		snaps:  make(map[string][]byte),
		dirty:  make(map[string]bool),
	}
	for _, sh := range shards {
		name := sh.Name()
		if name == "" {
			return nil, fmt.Errorf("shard: coordinator given an unnamed shard")
		}
		if _, dup := c.byName[name]; dup {
			return nil, fmt.Errorf("shard: duplicate shard name %q", name)
		}
		c.byName[name] = sh
		c.shards = append(c.shards, sh)
	}
	return c, nil
}

// ShardNames returns the shard map in order.
func (c *Coordinator) ShardNames() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.shards))
	for _, sh := range c.shards {
		names = append(names, sh.Name())
	}
	return names
}

// Shard returns a shard by name.
func (c *Coordinator) Shard(name string) (Shard, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sh, ok := c.byName[name]
	return sh, ok
}

// Assignment returns the shard an instance lives on.
func (c *Coordinator) Assignment(id string) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	name, ok := c.assign[id]
	return name, ok
}

// Window returns the number of completed fleet steps.
func (c *Coordinator) Window() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.windows
}

// Instances returns the fleet-wide cohort in onboarding order.
func (c *Coordinator) Instances() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.order...)
}

// Members returns every shard's members merged into fleet onboarding
// order.
func (c *Coordinator) Members() ([]core.Member, error) {
	c.mu.Lock()
	shards := append([]Shard(nil), c.shards...)
	order := append([]string(nil), c.order...)
	c.mu.Unlock()
	byID := make(map[string]core.Member)
	for _, sh := range shards {
		members, err := sh.Members()
		if err != nil {
			return nil, fmt.Errorf("shard %q: members: %w", sh.Name(), err)
		}
		for _, m := range members {
			byID[m.ID] = m
		}
	}
	out := make([]core.Member, 0, len(order))
	for _, id := range order {
		if m, ok := byID[id]; ok {
			out = append(out, m)
		}
	}
	return out, nil
}

// RegisterCheckpointExtra attaches a caller section to fleet snapshots,
// stored as "extra/<name>" in the outer container — the coordinator
// twin of core.System.RegisterCheckpointExtra. The save hook runs on
// every Checkpoint; the restore hook (may be nil) runs at the end of
// Restore and fails the restore if the snapshot lacks the section.
// Registering the same name again replaces the hooks.
func (c *Coordinator) RegisterCheckpointExtra(name string, save func() ([]byte, error), restore func([]byte) error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.extras {
		if c.extras[i].name == name {
			c.extras[i] = coordExtra{name: name, save: save, restore: restore}
			return
		}
	}
	c.extras = append(c.extras, coordExtra{name: name, save: save, restore: restore})
}

// Place picks the shard for an instance by rendezvous hashing over the
// shard map — deterministic in (id, shard names), independent of shard
// order and of what else is placed, and stable under shard-map growth
// in the usual rendezvous sense.
func (c *Coordinator) Place(id string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return placeRendezvous(id, c.shards)
}

func placeRendezvous(id string, shards []Shard) string {
	var best string
	var bestScore uint64
	for _, sh := range shards {
		h := fnv.New64a()
		io.WriteString(h, sh.Name())
		h.Write([]byte{0})
		io.WriteString(h, id)
		score := h.Sum64()
		if best == "" || score > bestScore || (score == bestScore && sh.Name() < best) {
			best, bestScore = sh.Name(), score
		}
	}
	return best
}

// AddInstance places the instance by rendezvous hash and provisions it
// there.
func (c *Coordinator) AddInstance(spec InstanceSpec) error {
	return c.AddInstanceTo(c.Place(spec.ID), spec)
}

// AddInstanceTo provisions the instance on an explicit shard.
func (c *Coordinator) AddInstanceTo(shardName string, spec InstanceSpec) error {
	c.mu.Lock()
	sh, ok := c.byName[shardName]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("shard: no shard %q in the map", shardName)
	}
	if owner, dup := c.assign[spec.ID]; dup {
		c.mu.Unlock()
		return fmt.Errorf("shard: instance %q already lives on shard %q", spec.ID, owner)
	}
	c.mu.Unlock()
	if err := sh.AddInstance(spec); err != nil {
		return err
	}
	c.mu.Lock()
	c.assign[spec.ID] = shardName
	c.order = append(c.order, spec.ID)
	c.dirty[shardName] = true
	c.mu.Unlock()
	return nil
}

// RemoveInstance deprovisions an instance wherever it lives.
func (c *Coordinator) RemoveInstance(id string) error {
	c.mu.Lock()
	name, ok := c.assign[id]
	sh := c.byName[name]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("shard: no instance %q in the fleet", id)
	}
	if err := sh.RemoveInstance(id); err != nil {
		return err
	}
	c.mu.Lock()
	delete(c.assign, id)
	for i, oid := range c.order {
		if oid == id {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	c.dirty[name] = true
	c.mu.Unlock()
	return nil
}

// ResizeInstance re-provisions an instance onto a new plan in place.
func (c *Coordinator) ResizeInstance(id, plan string, seed int64, agentCfg AgentConfig) error {
	c.mu.Lock()
	name, ok := c.assign[id]
	sh := c.byName[name]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("shard: no instance %q in the fleet", id)
	}
	if err := sh.ResizeInstance(id, plan, seed, agentCfg); err != nil {
		return err
	}
	c.mu.Lock()
	c.dirty[name] = true
	c.mu.Unlock()
	return nil
}

// Step advances the whole fleet one observation window: every shard
// steps concurrently (they share no state), then results merge in shard
// map order. After the merge all shards must agree on the window index
// — a skewed shard means a worker missed or replayed a step, and the
// error names it rather than letting the fleets silently diverge.
func (c *Coordinator) Step(dur time.Duration) (StepResult, error) {
	c.mu.Lock()
	shards := append([]Shard(nil), c.shards...)
	want := c.windows + 1
	c.mu.Unlock()

	results := make([]StepResult, len(shards))
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for i, sh := range shards {
		wg.Add(1)
		go func(i int, sh Shard) {
			defer wg.Done()
			results[i], errs[i] = sh.Step(dur)
		}(i, sh)
	}
	wg.Wait()

	out := StepResult{Window: want}
	for i, sh := range shards {
		if errs[i] != nil {
			return out, fmt.Errorf("shard %q: step: %w", sh.Name(), errs[i])
		}
		if results[i].Window != want {
			return out, fmt.Errorf("shard %q is at window %d, coordinator expects %d (missed or replayed step)",
				sh.Name(), results[i].Window, want)
		}
		out.Throttles += results[i].Throttles
		for kind, n := range results[i].Events {
			if out.Events == nil {
				out.Events = make(map[string]int)
			}
			out.Events[kind] += n
		}
		for id, p99 := range results[i].P99Ms {
			if out.P99Ms == nil {
				out.P99Ms = make(map[string]float64)
			}
			out.P99Ms[id] = p99
		}
		for id, msg := range results[i].Errors {
			if out.Errors == nil {
				out.Errors = make(map[string]string)
			}
			out.Errors[id] = msg
		}
	}
	c.mu.Lock()
	c.windows = want
	c.throttles += out.Throttles
	c.durations = append(c.durations, dur)
	c.mu.Unlock()
	return out, nil
}

// RunFor steps the fleet with the given window until total has elapsed,
// returning the aggregate throttle count.
func (c *Coordinator) RunFor(total, window time.Duration) (int, error) {
	var throttles int
	for elapsed := time.Duration(0); elapsed < total; elapsed += window {
		res, err := c.Step(window)
		if err != nil {
			return throttles, err
		}
		throttles += res.Throttles
	}
	return throttles, nil
}

// Counters aggregates every shard's counters into fleet totals.
func (c *Coordinator) Counters() (Counters, error) {
	c.mu.Lock()
	shards := append([]Shard(nil), c.shards...)
	c.mu.Unlock()
	var total Counters
	for _, sh := range shards {
		sc, err := sh.Counters()
		if err != nil {
			return Counters{}, fmt.Errorf("shard %q: counters: %w", sh.Name(), err)
		}
		total.Accumulate(sc)
	}
	return total, nil
}

// Fingerprint captures the fleet's determinism fingerprint: the
// coordinator's own counters plus every shard's, keyed by name.
func (c *Coordinator) Fingerprint() (FleetFingerprint, error) {
	c.mu.Lock()
	shards := append([]Shard(nil), c.shards...)
	fp := FleetFingerprint{
		Window:    c.windows,
		Throttles: c.throttles,
		Shards:    make(map[string]Fingerprint, len(shards)),
	}
	c.mu.Unlock()
	for _, sh := range shards {
		sfp, err := sh.Fingerprint()
		if err != nil {
			return FleetFingerprint{}, fmt.Errorf("shard %q: fingerprint: %w", sh.Name(), err)
		}
		fp.Shards[sh.Name()] = sfp
	}
	return fp, nil
}

// Rebalance migrates an instance to another shard: checkpoint out of
// the source (the "instance/<id>" section format — the snapshot wire
// format is the migration wire format), restore into the destination,
// then drop the source copy. The destination import rolls itself back
// on failure, so an interrupted rebalance never splits an instance
// across shards; the training history the instance contributed stays
// with the source shard's tuners, exactly as a remove does.
func (c *Coordinator) Rebalance(id, toShard string) error {
	c.mu.Lock()
	fromName, ok := c.assign[id]
	src := c.byName[fromName]
	dst, dstOK := c.byName[toShard]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("shard: no instance %q in the fleet", id)
	}
	if !dstOK {
		return fmt.Errorf("shard: no shard %q in the map", toShard)
	}
	if fromName == toShard {
		return nil
	}
	exp, err := src.ExportInstance(id)
	if err != nil {
		return fmt.Errorf("shard: export %q from %q: %w", id, fromName, err)
	}
	if err := dst.ImportInstance(exp); err != nil {
		return fmt.Errorf("shard: import %q into %q: %w", id, toShard, err)
	}
	if err := src.RemoveInstance(id); err != nil {
		// The destination copy is live; surface the stranded source
		// copy rather than guessing which side to keep.
		return fmt.Errorf("shard: %q migrated to %q but the source copy on %q failed to drop: %w",
			id, toShard, fromName, err)
	}
	c.mu.Lock()
	c.assign[id] = toShard
	c.dirty[fromName] = true
	c.dirty[toShard] = true
	c.mu.Unlock()
	return nil
}

// coordinatorState is the "coordinator" section of a fleet snapshot.
type coordinatorState struct {
	Windows   int               `json:"windows"`
	Throttles int               `json:"throttles"`
	Order     []string          `json:"order"`
	Assign    map[string]string `json:"assign"`
	Shards    []string          `json:"shards"` // shard map, in order
}

// Checkpoint writes a fleet snapshot: an outer ADBC container whose
// sections are the coordinator's control state plus every shard's full
// snapshot ("shard/<name>") — each itself a complete inner container,
// so every byte gets two layers of CRC verification and the shard
// snapshots double as the per-shard recovery baseline.
func (c *Coordinator) Checkpoint(w io.Writer) error {
	c.mu.Lock()
	shards := append([]Shard(nil), c.shards...)
	extras := append([]coordExtra(nil), c.extras...)
	st := coordinatorState{
		Windows:   c.windows,
		Throttles: c.throttles,
		Order:     append([]string(nil), c.order...),
		Assign:    make(map[string]string, len(c.assign)),
	}
	for id, name := range c.assign {
		st.Assign[id] = name
	}
	c.mu.Unlock()

	for _, sh := range shards {
		st.Shards = append(st.Shards, sh.Name())
	}
	var secs []checkpoint.RawSection
	ctl, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("shard: encode coordinator state: %w", err)
	}
	secs = append(secs, checkpoint.RawSection{Name: coordinatorSection, Payload: ctl})
	for _, sh := range shards {
		snap, err := sh.Checkpoint()
		if err != nil {
			return fmt.Errorf("shard %q: checkpoint: %w", sh.Name(), err)
		}
		secs = append(secs, checkpoint.RawSection{Name: shardSectionPrefix + sh.Name(), Payload: snap})
	}
	for _, ex := range extras {
		payload, err := ex.save()
		if err != nil {
			return fmt.Errorf("shard: checkpoint extra %q: %w", ex.name, err)
		}
		secs = append(secs, checkpoint.RawSection{Name: "extra/" + ex.name, Payload: payload})
	}
	c.mu.Lock()
	man := checkpoint.Manifest{Window: c.windows}
	c.mu.Unlock()
	_, err = checkpoint.WriteRaw(w, man, secs)
	return err
}

// Restore loads a fleet snapshot into this coordinator, whose shard map
// must cover every shard the snapshot was taken over. A stale map —
// the snapshot names a shard this coordinator does not have — fails
// before any shard state mutates, with an error naming the missing
// shards and every instance stranded on them.
func (c *Coordinator) Restore(r io.Reader) error {
	_, sections, err := checkpoint.Inspect(r)
	if err != nil {
		return err
	}
	ctl, ok := sections[coordinatorSection]
	if !ok {
		return fmt.Errorf("%w: snapshot lacks the %q section (not a fleet snapshot)", checkpoint.ErrManifest, coordinatorSection)
	}
	var st coordinatorState
	if err := json.Unmarshal(ctl, &st); err != nil {
		return fmt.Errorf("shard: decode coordinator state: %w", err)
	}

	c.mu.Lock()
	var missing []string
	for _, name := range st.Shards {
		if _, ok := c.byName[name]; !ok {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		stranded := make(map[string][]string)
		for id, name := range st.Assign {
			for _, m := range missing {
				if name == m {
					stranded[name] = append(stranded[name], id)
				}
			}
		}
		var parts []string
		for _, m := range missing {
			ids := stranded[m]
			sort.Strings(ids)
			parts = append(parts, fmt.Sprintf("%q (instances [%s])", m, strings.Join(ids, " ")))
		}
		c.mu.Unlock()
		return fmt.Errorf("%w: snapshot was taken over shard(s) %s absent from this coordinator's shard map %v — stale shard map",
			checkpoint.ErrManifest, strings.Join(parts, ", "), namesOf(c.shards))
	}
	shards := append([]Shard(nil), c.shards...)
	c.mu.Unlock()

	for _, name := range st.Shards {
		snap, ok := sections[shardSectionPrefix+name]
		if !ok {
			return fmt.Errorf("%w: snapshot lists shard %q but lacks its %q section",
				checkpoint.ErrManifest, name, shardSectionPrefix+name)
		}
		var sh Shard
		for _, s := range shards {
			if s.Name() == name {
				sh = s
				break
			}
		}
		if err := sh.Restore(snap); err != nil {
			return fmt.Errorf("shard %q: restore: %w", name, err)
		}
	}
	c.mu.Lock()
	c.windows = st.Windows
	c.throttles = st.Throttles
	c.order = append([]string(nil), st.Order...)
	c.assign = make(map[string]string, len(st.Assign))
	for id, name := range st.Assign {
		c.assign[id] = name
	}
	c.durations = nil
	c.snaps = make(map[string][]byte)
	c.snapWindow = st.Windows
	c.dirty = make(map[string]bool)
	extras := append([]coordExtra(nil), c.extras...)
	c.mu.Unlock()

	// Extras restore last, mirroring the core container's contract: a
	// registered restorer with no matching section fails the restore.
	for _, ex := range extras {
		if ex.restore == nil {
			continue
		}
		payload, ok := sections["extra/"+ex.name]
		if !ok {
			return fmt.Errorf("%w: snapshot lacks the registered extra section %q", checkpoint.ErrManifest, "extra/"+ex.name)
		}
		if err := ex.restore(payload); err != nil {
			return fmt.Errorf("shard: restore extra %q: %w", ex.name, err)
		}
	}
	return nil
}

func namesOf(shards []Shard) []string {
	out := make([]string, 0, len(shards))
	for _, sh := range shards {
		out = append(out, sh.Name())
	}
	return out
}

// SnapshotShards captures every shard's snapshot in memory and resets
// the replay log — the recovery baseline for RecoverShard. Call it
// between Steps; the snapshots are per-shard, so recovering one dead
// worker later touches nothing else.
func (c *Coordinator) SnapshotShards() error {
	c.mu.Lock()
	shards := append([]Shard(nil), c.shards...)
	c.mu.Unlock()
	snaps := make(map[string][]byte, len(shards))
	for _, sh := range shards {
		snap, err := sh.Checkpoint()
		if err != nil {
			return fmt.Errorf("shard %q: snapshot: %w", sh.Name(), err)
		}
		snaps[sh.Name()] = snap
	}
	c.mu.Lock()
	c.snaps = snaps
	c.snapWindow = c.windows
	c.durations = nil
	c.dirty = make(map[string]bool)
	c.mu.Unlock()
	return nil
}

// ReplaceShard swaps a (dead) shard for a replacement with the same
// name — a fresh Remote to a restarted worker process, or a fresh
// Local — and rebuilds its state: restore the shard's last snapshot,
// then replay the logged windows since. Shards are fully independent,
// so replaying one shard alone reproduces its state bit-for-bit; the
// rest of the fleet is never touched. Fails if membership on the shard
// changed after the last SnapshotShards (the replay recipe is stale)
// or if no snapshot exists.
func (c *Coordinator) ReplaceShard(name string, replacement Shard) error {
	if replacement.Name() != name {
		return fmt.Errorf("shard: replacement is named %q, want %q", replacement.Name(), name)
	}
	c.mu.Lock()
	old, ok := c.byName[name]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("shard: no shard %q in the map", name)
	}
	snap, haveSnap := c.snaps[name]
	dirty := c.dirty[name]
	replay := append([]time.Duration(nil), c.durations...)
	c.mu.Unlock()
	if !haveSnap {
		return fmt.Errorf("shard %q: no recovery snapshot (call SnapshotShards between steps)", name)
	}
	if dirty {
		return fmt.Errorf("shard %q: membership changed since the last SnapshotShards; take a fresh snapshot before recovery", name)
	}
	if err := replacement.Restore(snap); err != nil {
		return err
	}
	for i, dur := range replay {
		if _, err := replacement.Step(dur); err != nil {
			return fmt.Errorf("shard %q: replay window %d/%d: %w", name, i+1, len(replay), err)
		}
	}
	c.mu.Lock()
	for i, sh := range c.shards {
		if sh.Name() == name {
			c.shards[i] = replacement
			break
		}
	}
	c.byName[name] = replacement
	c.mu.Unlock()
	old.Close()
	return nil
}

// Close releases every shard.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	shards := append([]Shard(nil), c.shards...)
	c.mu.Unlock()
	var first error
	for _, sh := range shards {
		if err := sh.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
