package shard

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"reflect"
	"strings"
	"testing"
	"time"

	"autodbaas/internal/checkpoint"
)

// shardConfigs is the fixed 3-shard map the determinism suite runs —
// the same value drives the in-process and the multi-process fleet, as
// the contract is parameterized by (seed, topology, shard map).
func shardConfigs(faultProfile string) []Config {
	cfgs := make([]Config, 3)
	for i := range cfgs {
		cfgs[i] = Config{
			Name:        fmt.Sprintf("s%d", i),
			Seed:        1000 + int64(i),
			Parallelism: 2,
		}
		if faultProfile != "" {
			cfgs[i].FaultProfile = faultProfile
			cfgs[i].FaultSeed = 99 + int64(i)
		}
	}
	return cfgs
}

// newLocalCoordinator builds the in-process fleet: one Local per config.
func newLocalCoordinator(t *testing.T, cfgs []Config) *Coordinator {
	t.Helper()
	shards := make([]Shard, 0, len(cfgs))
	for _, cfg := range cfgs {
		l, err := NewLocal(cfg)
		if err != nil {
			t.Fatal(err)
		}
		shards = append(shards, l)
	}
	c, err := NewCoordinator(shards...)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// populate onboards n instances round-robin across the shard map — the
// placement is part of the topology the determinism contract fixes, so
// both fleets place identically and every shard holds a cohort.
func populate(t *testing.T, c *Coordinator, n int) {
	t.Helper()
	names := c.ShardNames()
	for i := 0; i < n; i++ {
		if err := c.AddInstanceTo(names[i%len(names)], testSpec(i)); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPlaceRendezvous pins the default placement: deterministic in
// (id, shard map), covering every shard over a reasonable cohort, and
// minimally disruptive — dropping one shard relocates only the
// instances that lived on it.
func TestPlaceRendezvous(t *testing.T) {
	cfgs := shardConfigs("")
	c := newLocalCoordinator(t, cfgs)
	used := make(map[string]int)
	first := make(map[string]string)
	for i := 0; i < 60; i++ {
		id := fmt.Sprintf("tenant-%d/db-%02d", i%7, i)
		name := c.Place(id)
		used[name]++
		first[id] = name
	}
	if len(used) != 3 {
		t.Fatalf("60 placements covered %d of 3 shards: %v", len(used), used)
	}
	for id, want := range first {
		if got := c.Place(id); got != want {
			t.Fatalf("placement of %s not deterministic: %s then %s", id, want, got)
		}
	}
	smaller := newLocalCoordinator(t, cfgs[:2])
	for id, before := range first {
		after := smaller.Place(id)
		if before != "s2" && after != before {
			t.Errorf("dropping s2 moved %s from %s to %s; rendezvous must only move s2 residents", id, before, after)
		}
	}
}

func fleetStepN(t *testing.T, c *Coordinator, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := c.Step(5 * time.Minute); err != nil {
			t.Fatalf("fleet step %d: %v", i, err)
		}
	}
}

// TestShardWorkerHelper is not a test: it is the worker process the
// multi-process suite re-execs this binary into. It prints its listen
// address and serves shard RPCs until killed.
func TestShardWorkerHelper(t *testing.T) {
	if os.Getenv("SHARD_WORKER_HELPER") != "1" {
		t.Skip("worker-process helper; spawned by the multi-process tests")
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Printf("WORKER_ERR %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("WORKER_ADDR %s\n", l.Addr().String())
	_ = NewServer().Serve(l)
}

// spawnWorker re-execs the test binary as one worker process and
// returns its RPC address plus a kill switch.
func spawnWorker(t *testing.T) (string, func()) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestShardWorkerHelper$")
	cmd.Env = append(os.Environ(), "SHARD_WORKER_HELPER=1")
	cmd.Stderr = io.Discard
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	var addr string
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if a, ok := strings.CutPrefix(sc.Text(), "WORKER_ADDR "); ok {
			addr = a
			break
		}
	}
	if addr == "" {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatal("worker process reported no address")
	}
	var once bool
	kill := func() {
		if once {
			return
		}
		once = true
		cmd.Process.Kill()
		cmd.Wait()
	}
	t.Cleanup(kill)
	return addr, kill
}

// newRemoteCoordinator spawns one worker process per config and builds
// the multi-process fleet over them. It returns per-shard kill
// switches keyed by shard name for the crash-recovery test.
func newRemoteCoordinator(t *testing.T, cfgs []Config) (*Coordinator, map[string]func()) {
	t.Helper()
	kills := make(map[string]func(), len(cfgs))
	shards := make([]Shard, 0, len(cfgs))
	for _, cfg := range cfgs {
		addr, kill := spawnWorker(t)
		r, err := Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Init(cfg); err != nil {
			t.Fatal(err)
		}
		shards = append(shards, r)
		kills[cfg.Name] = kill
	}
	c, err := NewCoordinator(shards...)
	if err != nil {
		t.Fatal(err)
	}
	return c, kills
}

// TestCrossProcessDeterminism is the tentpole acceptance test: a fixed
// (seed, topology, shard map) produces bit-for-bit the same fleet
// fingerprint whether the shards run in-process or as three worker
// processes — clean and under medium fault injection — and, for the
// multi-process fleet, across killing one worker mid-run and restoring
// its replacement from the shard snapshot + replay log.
func TestCrossProcessDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process determinism sweep")
	}
	for _, profile := range []string{"", "medium"} {
		name := "clean"
		if profile != "" {
			name = "faults-" + profile
		}
		t.Run(name, func(t *testing.T) {
			cfgs := shardConfigs(profile)
			const fleetSize, windows = 6, 24

			inproc := newLocalCoordinator(t, cfgs)
			populate(t, inproc, fleetSize)
			fleetStepN(t, inproc, windows)
			want, err := inproc.Fingerprint()
			if err != nil {
				t.Fatal(err)
			}
			if want.Throttles == 0 {
				t.Fatalf("degenerate baseline: %+v", want.Shards)
			}
			shardsUsed := 0
			for _, fp := range want.Shards {
				if fp.Counters.Instances > 0 {
					shardsUsed++
				}
			}
			if shardsUsed < 2 {
				t.Fatalf("placement degenerate: only %d shard(s) hold instances", shardsUsed)
			}

			remote, kills := newRemoteCoordinator(t, cfgs)
			defer remote.Close()
			populate(t, remote, fleetSize)

			// First leg, then capture the recovery baseline.
			fleetStepN(t, remote, 4)
			if err := remote.SnapshotShards(); err != nil {
				t.Fatal(err)
			}
			fleetStepN(t, remote, 4)

			// Kill the middle worker mid-run and restore a fresh process
			// from the shard snapshot + replay log.
			kills["s1"]()
			addr, _ := spawnWorker(t)
			fresh, err := Dial("tcp", addr)
			if err != nil {
				t.Fatal(err)
			}
			if err := fresh.Init(cfgs[1]); err != nil {
				t.Fatal(err)
			}
			if err := remote.ReplaceShard("s1", fresh); err != nil {
				t.Fatal(err)
			}
			fleetStepN(t, remote, windows-8)

			got, err := remote.Fingerprint()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Errorf("3-worker fleet diverged from in-process fleet:\n  want: %+v\n  got:  %+v", want, got)
			}
		})
	}
}

// TestCoordinatorCheckpointRestore: a fleet snapshot (outer container
// nesting per-shard snapshots) restores into a freshly built fleet
// with the same shard map, and replaying reproduces the uninterrupted
// fingerprint.
func TestCoordinatorCheckpointRestore(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet snapshot sweep")
	}
	cfgs := shardConfigs("")
	full := newLocalCoordinator(t, cfgs)
	populate(t, full, 6)
	fleetStepN(t, full, 10)
	want, err := full.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}

	half := newLocalCoordinator(t, cfgs)
	populate(t, half, 6)
	fleetStepN(t, half, 5)
	var snap bytes.Buffer
	if err := half.Checkpoint(&snap); err != nil {
		t.Fatal(err)
	}

	// Restore into a coordinator whose shards were never populated —
	// the snapshot carries every cohort.
	resumed := newLocalCoordinator(t, cfgs)
	if err := resumed.Restore(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}
	if resumed.Window() != 5 {
		t.Fatalf("resumed window = %d, want 5", resumed.Window())
	}
	if got := resumed.Instances(); len(got) != 6 {
		t.Fatalf("resumed cohort = %v", got)
	}
	fleetStepN(t, resumed, 5)
	got, err := resumed.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("fleet restore+replay diverged:\n  want: %+v\n  got:  %+v", want, got)
	}
}

// TestCoordinatorRestoreStaleShardMap: restoring a fleet snapshot into
// a coordinator missing one of the snapshot's shards must fail with a
// manifest error naming the missing shard AND the instances stranded
// on it — and must not panic or mutate the surviving shards.
func TestCoordinatorRestoreStaleShardMap(t *testing.T) {
	cfgs := shardConfigs("")
	full := newLocalCoordinator(t, cfgs)
	populate(t, full, 6)
	fleetStepN(t, full, 2)
	var snap bytes.Buffer
	if err := full.Checkpoint(&snap); err != nil {
		t.Fatal(err)
	}
	// Which instances live on the shard we are about to drop?
	var stranded []string
	for _, id := range full.Instances() {
		if name, _ := full.Assignment(id); name == "s2" {
			stranded = append(stranded, id)
		}
	}
	if len(stranded) == 0 {
		t.Fatal("placement left s2 empty; test needs a populated shard to strand")
	}

	stale := newLocalCoordinator(t, cfgs[:2])
	err := stale.Restore(bytes.NewReader(snap.Bytes()))
	if !errors.Is(err, checkpoint.ErrManifest) {
		t.Fatalf("err = %v, want ErrManifest", err)
	}
	for _, id := range stranded {
		if !strings.Contains(err.Error(), id) {
			t.Errorf("error does not name stranded instance %s: %v", id, err)
		}
	}
	if !strings.Contains(err.Error(), `"s2"`) {
		t.Errorf("error does not name the missing shard: %v", err)
	}
	// The refusal happened before any shard state mutated.
	if stale.Window() != 0 {
		t.Errorf("stale coordinator advanced to window %d", stale.Window())
	}
}

// TestRebalanceManyPreservesSurvivors: migrating ten instances between
// shards preserves every instance's live state — engine configuration
// and monitor series — and the fleet keeps stepping afterwards.
func TestRebalanceManyPreservesSurvivors(t *testing.T) {
	if testing.Short() {
		t.Skip("rebalance sweep")
	}
	cfgs := shardConfigs("")[:2]
	c := newLocalCoordinator(t, cfgs)
	const fleetSize = 12
	// Stack everything on s0 so ten migrations have somewhere to go.
	for i := 0; i < fleetSize; i++ {
		if err := c.AddInstanceTo("s0", testSpec(i)); err != nil {
			t.Fatal(err)
		}
	}
	fleetStepN(t, c, 4)
	before, err := c.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}

	moved := 0
	for _, id := range c.Instances() {
		if moved == 10 {
			break
		}
		if err := c.Rebalance(id, "s1"); err != nil {
			t.Fatalf("rebalance %s: %v", id, err)
		}
		if name, _ := c.Assignment(id); name != "s1" {
			t.Fatalf("%s assigned to %q after rebalance", id, name)
		}
		moved++
	}
	after, err := c.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	// Per-instance state is shard-agnostic: collect (config, monitor)
	// across shards and compare by instance.
	collect := func(fp FleetFingerprint) (map[string]any, map[string]int) {
		cfgs := make(map[string]any)
		mons := make(map[string]int)
		for _, sfp := range fp.Shards {
			for id, kc := range sfp.Configs {
				cfgs[id] = kc
			}
			for id, n := range sfp.MonitorPoints {
				mons[id] = n
			}
		}
		return cfgs, mons
	}
	cfgsBefore, monsBefore := collect(before)
	cfgsAfter, monsAfter := collect(after)
	if !reflect.DeepEqual(cfgsBefore, cfgsAfter) {
		t.Errorf("instance configs changed across rebalance:\n  before: %+v\n  after:  %+v", cfgsBefore, cfgsAfter)
	}
	if !reflect.DeepEqual(monsBefore, monsAfter) {
		t.Errorf("monitor series changed across rebalance:\n  before: %v\n  after:  %v", monsBefore, monsAfter)
	}
	if n := after.Shards["s1"].Counters.Instances; n != 10 {
		t.Errorf("s1 holds %d instances, want 10", n)
	}
	fleetStepN(t, c, 3)
	// A no-op rebalance (same shard) and unknown targets are handled.
	if err := c.Rebalance(c.Instances()[0], "s1"); err != nil {
		t.Fatalf("same-shard rebalance: %v", err)
	}
	if err := c.Rebalance(c.Instances()[0], "nope"); err == nil {
		t.Fatal("rebalance to unknown shard accepted")
	}
	if err := c.Rebalance("ghost", "s1"); err == nil {
		t.Fatal("rebalance of unknown instance accepted")
	}
}

// TestRebalanceMidWarmup: an instance migrated before its first window
// — nothing warmed up, no samples uploaded — lands cleanly and runs.
func TestRebalanceMidWarmup(t *testing.T) {
	cfgs := shardConfigs("")[:2]
	c := newLocalCoordinator(t, cfgs)
	if err := c.AddInstanceTo("s0", testSpec(0)); err != nil {
		t.Fatal(err)
	}
	if err := c.AddInstanceTo("s0", testSpec(1)); err != nil {
		t.Fatal(err)
	}
	// One window in: db-01 is mid-warmup (agents tick every 5m; one
	// 5m window is the first tick at best).
	fleetStepN(t, c, 1)
	if err := c.Rebalance("db-01", "s1"); err != nil {
		t.Fatalf("mid-warmup rebalance: %v", err)
	}
	// And a zero-window migration: provisioned, never stepped.
	if err := c.AddInstanceTo("s0", testSpec(2)); err != nil {
		t.Fatal(err)
	}
	if err := c.Rebalance("db-02", "s1"); err != nil {
		t.Fatalf("pre-first-window rebalance: %v", err)
	}
	fleetStepN(t, c, 3)
	fp, err := c.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp.Shards["s1"].Counters.Instances != 2 {
		t.Fatalf("s1 = %+v", fp.Shards["s1"].Counters)
	}
}

// TestRebalanceWhileCircuitOpen: migrating an instance whose circuit
// breaker is open moves the instance; breaker state is shard-local and
// deliberately NOT migrated — the destination starts a fresh breaker,
// exactly as the director's ForgetInstance contract says.
func TestRebalanceWhileCircuitOpen(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep")
	}
	cfgs := shardConfigs("heavy")[:2]
	c := newLocalCoordinator(t, cfgs)
	for i := 0; i < 4; i++ {
		if err := c.AddInstanceTo("s0", testSpec(i)); err != nil {
			t.Fatal(err)
		}
	}
	src, _ := c.Shard("s0")
	srcSys := src.(*Local).System()
	tripped := ""
	for w := 0; w < 150 && tripped == ""; w++ {
		fleetStepN(t, c, 1)
		for _, id := range c.Instances() {
			if srcSys.Director.CircuitOpen(id) {
				tripped = id
				break
			}
		}
	}
	if tripped == "" {
		t.Fatal("heavy profile opened no circuit in 150 windows; pick a different fault seed")
	}
	if err := c.Rebalance(tripped, "s1"); err != nil {
		t.Fatalf("rebalance with open circuit: %v", err)
	}
	dst, _ := c.Shard("s1")
	if dst.(*Local).System().Director.CircuitOpen(tripped) {
		t.Errorf("destination inherited an open circuit for %s; breaker state must start fresh", tripped)
	}
	if srcSys.Director.CircuitOpen(tripped) {
		t.Errorf("source still tracks a circuit for migrated instance %s", tripped)
	}
	fleetStepN(t, c, 2)
}

// TestReplaceShardGuards pins the recovery preconditions: no snapshot
// and stale membership both refuse with actionable errors.
func TestReplaceShardGuards(t *testing.T) {
	cfgs := shardConfigs("")[:2]
	c := newLocalCoordinator(t, cfgs)
	if err := c.AddInstanceTo("s0", testSpec(0)); err != nil {
		t.Fatal(err)
	}
	if err := c.AddInstanceTo("s1", testSpec(1)); err != nil {
		t.Fatal(err)
	}

	fresh, err := NewLocal(cfgs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ReplaceShard("s0", fresh); err == nil || !strings.Contains(err.Error(), "no recovery snapshot") {
		t.Fatalf("err = %v, want missing-snapshot refusal", err)
	}
	if err := c.SnapshotShards(); err != nil {
		t.Fatal(err)
	}
	// Membership change invalidates the replay recipe for that shard.
	var onS0 string
	for _, id := range c.Instances() {
		if name, _ := c.Assignment(id); name == "s0" {
			onS0 = id
			break
		}
	}
	if onS0 == "" {
		t.Fatal("nothing placed on s0")
	}
	if err := c.RemoveInstance(onS0); err != nil {
		t.Fatal(err)
	}
	if err := c.ReplaceShard("s0", fresh); err == nil || !strings.Contains(err.Error(), "membership changed") {
		t.Fatalf("err = %v, want stale-membership refusal", err)
	}
	mismatch, err := NewLocal(testConfig("other", 5))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ReplaceShard("s0", mismatch); err == nil {
		t.Fatal("name-mismatched replacement accepted")
	}
}
