package shard

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		nil,
		{},
		[]byte("x"),
		[]byte(`{"id":1,"method":"step","params":{"dur_ns":300000000000}}`),
		bytes.Repeat([]byte{0xAB}, 3<<20), // multi-chunk payload
	}
	for _, want := range payloads {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, FrameRequest, want); err != nil {
			t.Fatalf("write %d bytes: %v", len(want), err)
		}
		typ, got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("read %d bytes: %v", len(want), err)
		}
		if typ != FrameRequest {
			t.Fatalf("type = %d, want %d", typ, FrameRequest)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("payload mismatch at %d bytes", len(want))
		}
	}
}

func TestFrameCleanEOF(t *testing.T) {
	_, _, err := ReadFrame(bytes.NewReader(nil))
	if err != io.EOF {
		t.Fatalf("empty stream: err = %v, want io.EOF", err)
	}
}

func TestFrameTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, FrameResponse, []byte("hello worker")); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	// Every proper prefix except the empty one must fail with
	// ErrWireTruncated (cutting inside the header, name, payload or CRC).
	for cut := 1; cut < len(whole); cut++ {
		_, _, err := ReadFrame(bytes.NewReader(whole[:cut]))
		if !errors.Is(err, ErrWireTruncated) {
			t.Fatalf("cut at %d/%d: err = %v, want ErrWireTruncated", cut, len(whole), err)
		}
	}
}

func TestFrameChecksumMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, FrameRequest, []byte("checksummed payload")); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[frameHeaderLen+3] ^= 0x40 // flip one payload bit
	_, _, err := ReadFrame(bytes.NewReader(raw))
	if !errors.Is(err, ErrWireChecksum) {
		t.Fatalf("err = %v, want ErrWireChecksum", err)
	}
}

func TestFrameBadMagicAndVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, FrameRequest, []byte("x")); err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), buf.Bytes()...)
	bad[0] = 'X'
	if _, _, err := ReadFrame(bytes.NewReader(bad)); !errors.Is(err, ErrWireMagic) {
		t.Fatalf("magic: err = %v, want ErrWireMagic", err)
	}
	bad = append([]byte(nil), buf.Bytes()...)
	bad[4] = WireVersion + 1
	if _, _, err := ReadFrame(bytes.NewReader(bad)); !errors.Is(err, ErrWireVersion) {
		t.Fatalf("version: err = %v, want ErrWireVersion", err)
	}
}

// TestFrameOversizedClaim pins the allocation bound: a header claiming
// a payload beyond MaxFrame is rejected before any payload allocation,
// and a header lying upward about a small payload fails by truncation
// after at most one chunk — never by allocating the claimed size.
func TestFrameOversizedClaim(t *testing.T) {
	var hdr [frameHeaderLen]byte
	copy(hdr[:4], wireMagic[:])
	hdr[4] = WireVersion
	hdr[5] = FrameRequest
	binary.LittleEndian.PutUint32(hdr[6:], MaxFrame+1)
	_, _, err := ReadFrame(bytes.NewReader(hdr[:]))
	if !errors.Is(err, ErrWireOversized) {
		t.Fatalf("err = %v, want ErrWireOversized", err)
	}

	// Claim 64 MiB, deliver 10 bytes: must fail truncated, not OOM.
	binary.LittleEndian.PutUint32(hdr[6:], 64<<20)
	stream := append(append([]byte(nil), hdr[:]...), []byte("short read")...)
	_, _, err = ReadFrame(bytes.NewReader(stream))
	if !errors.Is(err, ErrWireTruncated) {
		t.Fatalf("err = %v, want ErrWireTruncated", err)
	}
	if err := WriteFrame(io.Discard, FrameRequest, make([]byte, MaxFrame+1)); !errors.Is(err, ErrWireOversized) {
		t.Fatalf("write: err = %v, want ErrWireOversized", err)
	}
}

// FuzzDecodeFrame throws arbitrary bytes at the frame decoder: it must
// reject truncated, oversized and bit-rotted frames with a wire error
// (or io.EOF on an empty stream) and must round-trip anything it
// accepts — without allocation blowups on lying length fields, which
// the 64 MiB claim in TestFrameOversizedClaim pins and the fuzzer
// explores further.
func FuzzDecodeFrame(f *testing.F) {
	var seed bytes.Buffer
	_ = WriteFrame(&seed, FrameRequest, []byte(`{"id":7,"method":"ping"}`))
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte("ADBW"))
	f.Add(seed.Bytes()[:frameHeaderLen])
	trunc := append([]byte(nil), seed.Bytes()...)
	binary.LittleEndian.PutUint32(trunc[6:], 1<<27) // huge claim, tiny body
	f.Add(trunc)

	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted frames must re-encode to a decodable frame with the
		// same content.
		var buf bytes.Buffer
		if err := WriteFrame(&buf, typ, payload); err != nil {
			t.Fatalf("re-encode accepted frame: %v", err)
		}
		typ2, payload2, err := ReadFrame(&buf)
		if err != nil || typ2 != typ || !bytes.Equal(payload, payload2) {
			t.Fatalf("round-trip mismatch: err=%v", err)
		}
	})
}
