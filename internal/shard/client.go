package shard

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"autodbaas/internal/core"
)

// Remote is the RPC-backed Shard: a thin proxy over one connection to a
// worker process hosting a Local. Every Shard method maps to exactly
// one request/response exchange; calls serialize on the connection.
type Remote struct {
	mu   sync.Mutex
	conn net.Conn
	name string
	next uint64
}

// Dial connects to a worker and verifies it speaks the protocol. The
// worker may be uninitialized (fresh process) or already hosting a
// shard (coordinator reconnect) — Attach or Init settles which.
func Dial(network, addr string) (*Remote, error) {
	conn, err := net.Dial(network, addr)
	if err != nil {
		return nil, fmt.Errorf("shard: dial worker %s: %w", addr, err)
	}
	r := &Remote{conn: conn}
	if err := r.call("ping", nil, nil); err != nil {
		conn.Close()
		return nil, fmt.Errorf("shard: worker %s handshake: %w", addr, err)
	}
	return r, nil
}

// Init builds the worker's shard from cfg (replacing any previous one)
// and names this proxy after it.
func (r *Remote) Init(cfg Config) error {
	if err := r.call("init", cfg, nil); err != nil {
		return err
	}
	r.mu.Lock()
	r.name = cfg.Name
	r.mu.Unlock()
	return nil
}

// Attach adopts the shard the worker already hosts — the reconnect
// path after a coordinator restart — returning its Config.
func (r *Remote) Attach() (Config, error) {
	var cfg Config
	if err := r.call("config", nil, &cfg); err != nil {
		return Config{}, err
	}
	r.mu.Lock()
	r.name = cfg.Name
	r.mu.Unlock()
	return cfg, nil
}

// call performs one request/response exchange.
func (r *Remote) call(method string, params, result any) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	req := rpcRequest{ID: r.next, Method: method}
	r.next++
	if params != nil {
		raw, err := json.Marshal(params)
		if err != nil {
			return fmt.Errorf("shard: encode %s params: %w", method, err)
		}
		req.Params = raw
	}
	payload, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("shard: encode %s request: %w", method, err)
	}
	if err := WriteFrame(r.conn, FrameRequest, payload); err != nil {
		return fmt.Errorf("shard: send %s to worker: %w", method, err)
	}
	typ, raw, err := ReadFrame(r.conn)
	if err != nil {
		return fmt.Errorf("shard: %s response from worker: %w", method, err)
	}
	if typ != FrameResponse {
		return fmt.Errorf("shard: %s: worker sent frame type %d, want response", method, typ)
	}
	var resp rpcResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		return fmt.Errorf("shard: decode %s response: %w", method, err)
	}
	if resp.ID != req.ID {
		return fmt.Errorf("shard: %s: response id %d for request %d (protocol desync)", method, resp.ID, req.ID)
	}
	if resp.Err != "" {
		return fmt.Errorf("shard worker: %s", resp.Err)
	}
	if result != nil {
		if err := json.Unmarshal(resp.Result, result); err != nil {
			return fmt.Errorf("shard: decode %s result: %w", method, err)
		}
	}
	return nil
}

// Name implements Shard.
func (r *Remote) Name() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.name
}

// AddInstance implements Shard.
func (r *Remote) AddInstance(spec InstanceSpec) error {
	return r.call("add", spec, nil)
}

// RemoveInstance implements Shard.
func (r *Remote) RemoveInstance(id string) error {
	return r.call("remove", idParams{ID: id}, nil)
}

// ResizeInstance implements Shard.
func (r *Remote) ResizeInstance(id, plan string, seed int64, agentCfg AgentConfig) error {
	return r.call("resize", resizeParams{ID: id, Plan: plan, Seed: seed, Agent: agentCfg}, nil)
}

// Members implements Shard.
func (r *Remote) Members() ([]core.Member, error) {
	var members []core.Member
	if err := r.call("members", nil, &members); err != nil {
		return nil, err
	}
	return members, nil
}

// Step implements Shard.
func (r *Remote) Step(dur time.Duration) (StepResult, error) {
	var res StepResult
	if err := r.call("step", stepParams{DurNS: int64(dur)}, &res); err != nil {
		return StepResult{}, err
	}
	return res, nil
}

// Counters implements Shard.
func (r *Remote) Counters() (Counters, error) {
	var c Counters
	if err := r.call("counters", nil, &c); err != nil {
		return Counters{}, err
	}
	return c, nil
}

// Fingerprint implements Shard.
func (r *Remote) Fingerprint() (Fingerprint, error) {
	var fp Fingerprint
	if err := r.call("fingerprint", nil, &fp); err != nil {
		return Fingerprint{}, err
	}
	return fp, nil
}

// Checkpoint implements Shard.
func (r *Remote) Checkpoint() ([]byte, error) {
	var p snapshotParams
	if err := r.call("checkpoint", nil, &p); err != nil {
		return nil, err
	}
	return p.Snapshot, nil
}

// Restore implements Shard.
func (r *Remote) Restore(snapshot []byte) error {
	return r.call("restore", snapshotParams{Snapshot: snapshot}, nil)
}

// ExportInstance implements Shard.
func (r *Remote) ExportInstance(id string) (InstanceExport, error) {
	var exp InstanceExport
	if err := r.call("export", idParams{ID: id}, &exp); err != nil {
		return InstanceExport{}, err
	}
	return exp, nil
}

// ImportInstance implements Shard.
func (r *Remote) ImportInstance(exp InstanceExport) error {
	return r.call("import", exp, nil)
}

// Close implements Shard: it drops the connection. The worker process
// survives for the next coordinator.
func (r *Remote) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.conn.Close()
}

var _ Shard = (*Remote)(nil)
