package shard

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// The coordinator–worker wire protocol is a strict request/response
// exchange of length-prefixed, CRC-trailed frames over one TCP or unix
// stream:
//
//	frame: magic "ADBW" | version (1 byte) | type (1 byte) |
//	       payload len (uint32 LE) | payload | CRC-32 (IEEE, uint32 LE)
//	       of the payload
//
// Frame payloads are JSON (rpcRequest / rpcResponse); the envelope is
// binary so a reader can reject garbage, truncation, oversized claims
// and bit rot before touching a JSON decoder. Payload reads are chunked
// so a frame header lying about its length cannot force a giant
// allocation — the decoder allocates as bytes actually arrive, and
// gives up at the first short read.

// WireVersion is the protocol version this build speaks.
const WireVersion = 1

// MaxFrame bounds one frame's payload. A shard snapshot for a large
// cohort rides inside a single frame, so the cap is generous; anything
// past it is a corrupt or hostile header, not a real payload.
const MaxFrame = 1 << 28

var wireMagic = [4]byte{'A', 'D', 'B', 'W'}

// Frame types.
const (
	// FrameRequest carries an rpcRequest, coordinator → worker.
	FrameRequest byte = 1
	// FrameResponse carries an rpcResponse, worker → coordinator.
	FrameResponse byte = 2
)

// Wire protocol sentinel errors, mirroring the checkpoint container's.
var (
	// ErrWireMagic: the stream is not speaking the shard protocol.
	ErrWireMagic = errors.New("shard: bad wire magic")
	// ErrWireVersion: the peer speaks an incompatible protocol version.
	ErrWireVersion = errors.New("shard: unsupported wire version")
	// ErrWireTruncated: the stream ended inside a frame.
	ErrWireTruncated = errors.New("shard: truncated frame")
	// ErrWireChecksum: the payload does not match its CRC.
	ErrWireChecksum = errors.New("shard: frame checksum mismatch")
	// ErrWireOversized: the header claims a payload beyond MaxFrame.
	ErrWireOversized = errors.New("shard: oversized frame")
)

// frameHeaderLen is magic + version + type + payload length.
const frameHeaderLen = 4 + 1 + 1 + 4

// WriteFrame emits one frame.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("%w: %d bytes (cap %d)", ErrWireOversized, len(payload), MaxFrame)
	}
	var hdr [frameHeaderLen]byte
	copy(hdr[:4], wireMagic[:])
	hdr[4] = WireVersion
	hdr[5] = typ
	binary.LittleEndian.PutUint32(hdr[6:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	_, err := w.Write(crc[:])
	return err
}

// readChunk is the allocation unit for frame payloads: large frames
// grow their buffer as bytes actually arrive instead of trusting the
// declared length up front.
const readChunk = 1 << 20

// ReadFrame reads and verifies one frame, returning its type and
// payload. io.EOF is returned bare when the stream ends cleanly on a
// frame boundary (the peer hung up between requests).
func ReadFrame(r io.Reader) (byte, []byte, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("%w: stream ended inside a frame header", ErrWireTruncated)
	}
	if hdr[0] != wireMagic[0] || hdr[1] != wireMagic[1] || hdr[2] != wireMagic[2] || hdr[3] != wireMagic[3] {
		return 0, nil, ErrWireMagic
	}
	if hdr[4] != WireVersion {
		return 0, nil, fmt.Errorf("%w: peer speaks v%d, this build v%d", ErrWireVersion, hdr[4], WireVersion)
	}
	typ := hdr[5]
	length := binary.LittleEndian.Uint32(hdr[6:])
	if length > MaxFrame {
		return typ, nil, fmt.Errorf("%w: header claims %d bytes (cap %d)", ErrWireOversized, length, MaxFrame)
	}
	payload := make([]byte, 0, min(int(length), readChunk))
	remaining := int(length)
	for remaining > 0 {
		n := min(remaining, readChunk)
		chunk := make([]byte, n)
		if _, err := io.ReadFull(r, chunk); err != nil {
			return typ, nil, fmt.Errorf("%w: stream ended %d bytes into a %d-byte payload", ErrWireTruncated, len(payload), length)
		}
		payload = append(payload, chunk...)
		remaining -= n
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(r, crcBuf[:]); err != nil {
		return typ, nil, fmt.Errorf("%w: stream ended before the frame checksum", ErrWireTruncated)
	}
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(crcBuf[:]); got != want {
		return typ, nil, fmt.Errorf("%w: stored %08x, computed %08x", ErrWireChecksum, want, got)
	}
	return typ, payload, nil
}

// rpcRequest is one coordinator call. Params is method-specific JSON.
type rpcRequest struct {
	ID     uint64          `json:"id"`
	Method string          `json:"method"`
	Params json.RawMessage `json:"params,omitempty"`
}

// rpcResponse answers a request. Err is the flattened error message
// ("" means success); Result is method-specific JSON.
type rpcResponse struct {
	ID     uint64          `json:"id"`
	Err    string          `json:"err,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}
