package scenario

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden timeline files")

// TestGoldenTimelines replays the testdata fixtures and compares the
// emitted CSV and JSON timelines byte for byte against committed
// goldens. Regenerate with:
//
//	go test ./internal/scenario -run TestGoldenTimelines -update
func TestGoldenTimelines(t *testing.T) {
	fixtures := []struct {
		name string
		cfg  RunConfig
	}{
		{"golden-diurnal", RunConfig{Parallelism: 2}},
		{"golden-churn", RunConfig{Parallelism: 2}},
		// Replayed with the safe-tuning gate armed: pins gate decisions
		// (vetoes, canaries, rollbacks) into the committed totals.
		{"golden-tuning-regression", RunConfig{Parallelism: 2, Safety: true}},
	}
	for _, fx := range fixtures {
		name, cfg := fx.name, fx.cfg
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(filepath.Join("testdata", name+".yaml"))
			if err != nil {
				t.Fatal(err)
			}
			sc, err := Parse(string(src))
			if err != nil {
				t.Fatal(err)
			}
			p, err := sc.Compile()
			if err != nil {
				t.Fatal(err)
			}
			r, err := NewRunner(p, cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			res, err := r.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}

			var csv, js bytes.Buffer
			if err := res.WriteCSV(&csv); err != nil {
				t.Fatal(err)
			}
			if err := res.WriteJSON(&js); err != nil {
				t.Fatal(err)
			}
			for ext, got := range map[string][]byte{".csv": csv.Bytes(), ".json": js.Bytes()} {
				golden := filepath.Join("testdata", name+ext)
				if *update {
					if err := os.WriteFile(golden, got, 0o644); err != nil {
						t.Fatal(err)
					}
					continue
				}
				want, err := os.ReadFile(golden)
				if err != nil {
					t.Fatalf("%v (run with -update to generate)", err)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("%s diverged from golden (run with -update after an intentional change)\ngot:\n%s\nwant:\n%s",
						golden, got, want)
				}
			}
		})
	}
}
