package scenario

import (
	"strings"
	"testing"

	"autodbaas/scenarios"
)

// FuzzParseScenario hammers the whole front half of the pipeline:
// whatever bytes come in, Parse and Compile must return an error or a
// runnable plan — never panic, never hang. Seeds cover the full
// library plus a gallery of malformed documents (bad curves, negative
// durations, unknown fault profiles, broken YAML structure).
func FuzzParseScenario(f *testing.F) {
	for _, name := range scenarios.Names() {
		src, err := scenarios.Source(name)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(src)
	}
	for _, s := range []string{
		"",
		"name: x",
		"name: x\nwindow: -30m\nduration: 1h\n",
		"name: x\nwindow: 30m\nduration: -1h\n",
		"name: x\nwindow: 30m\nduration: 1h\nfaults:\n  profile: nope\n",
		"name: x\nwindow: 30m\nduration: 1h\ntenants:\n  - id: a\n    tier: dev\n    databases:\n      - id: d\n        blueprint: pg-oltp-small\n        load:\n          - diurnal: {peak: -1, trough: 0, peak-at: 99d}\n",
		"name: x\nwindow: 30m\nduration: 1h\ntenants:\n  - id: a\n    tier: dev\n    databases:\n      - id: d\n        blueprint: pg-oltp-small\n        load:\n          - spike: {at: -5m, for: 0s, x: 0}\n",
		"a: &anchor b\n",
		"a: |\n  block\n",
		"a: {b: {c: d}}\n",
		"\t\ttabs\n",
		"events:\n  - at: 1h\n",
		strings.Repeat("a:\n  ", 50) + "b: 1\n",
		"- just\n- a\n- list\n",
		`name: "unterminated`,
		"name: x\nname: y\n",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		sc, err := Parse(src)
		if err != nil {
			return
		}
		// Valid parse: compiling must also never panic; errors are fine.
		_, _ = sc.Compile()
	})
}
