package scenario

import (
	"fmt"
	"sort"
	"time"

	"autodbaas/internal/cluster"
	"autodbaas/internal/fleet"
	"autodbaas/internal/tenant"
	"autodbaas/internal/workload"
)

// Action kinds in a compiled schedule.
const (
	ActCreateTenant   = "create-tenant"
	ActDeleteTenant   = "delete-tenant"
	ActCreateDatabase = "create-database"
	ActDeleteDatabase = "delete-database"
	ActResize         = "resize"
)

// Action is one control-plane mutation pinned to a window index.
// Actions apply between ticks — before the reconcile of the window
// they name — exactly as REST mutations land between serve-loop steps.
type Action struct {
	Window int    `json:"window"`
	Kind   string `json:"kind"`
	Tenant string `json:"tenant"`

	// Tier (create-tenant), Spec (create-database), Database
	// (delete-database, resize), Plan (resize).
	Tier     string             `json:"tier,omitempty"`
	Database string             `json:"database,omitempty"`
	Plan     string             `json:"plan,omitempty"`
	Spec     fleet.DatabaseSpec `json:"spec,omitempty"`
}

// Plan is a compiled scenario: the windowed action schedule plus the
// catalogue the fleet service must be built with. It is a pure
// function of the document — no clocks, no randomness — so the same
// file always replays the same campaign.
type Plan struct {
	Scenario *Scenario
	Windows  int
	Window   time.Duration

	// Actions are sorted by (window, declaration order).
	Actions []Action

	// Tiers and Blueprints merge the scenario's templates over the
	// built-in catalogue.
	Tiers      map[string]tenant.Tier
	Blueprints map[string]tenant.Blueprint

	// PeakInstances and TotalProvisions come from the compile-time
	// dry-run — a capacity preview before anything is built.
	PeakInstances   int
	TotalProvisions int
}

// Compile turns a parsed scenario into a runnable plan. Beyond the
// structural checks Parse already did, Compile expands onboarding
// waves and statically replays the whole schedule against the fleet's
// desired-state rules (quotas, duplicate IDs, tier/plan legality,
// delete/resize lifecycle ordering), so a scenario that would fail
// mid-run is rejected here — before any fleet exists to mutate.
func (sc *Scenario) Compile() (*Plan, error) {
	p := &Plan{
		Scenario:   sc,
		Window:     sc.Window,
		Windows:    int(sc.Duration / sc.Window),
		Tiers:      tenant.DefaultTiers(),
		Blueprints: tenant.DefaultBlueprints(),
	}
	for _, bp := range sc.Blueprints {
		p.Blueprints[bp.Name] = bp
	}

	windowMin := int(sc.Window / time.Minute)
	// shapeAt pins a load shape with the join-window offset: a database
	// provisioned at window w starts its own virtual clock at SimEpoch,
	// so its shape must be advanced by w windows of scenario time.
	shapeAt := func(sh workload.Shape, window int) *workload.Shape {
		if sh.Empty() {
			return nil
		}
		out := sh
		out.OffsetMin = window * windowMin
		out.Terms = append([]workload.Term(nil), sh.Terms...)
		return &out
	}

	windowOf := func(at time.Duration, what string) (int, error) {
		if at%sc.Window != 0 {
			return 0, fmt.Errorf("%s at %s is not on a %s window boundary", what, at, sc.Window)
		}
		w := int(at / sc.Window)
		if w >= p.Windows {
			return 0, fmt.Errorf("%s at %s is past the scenario end (%s)", what, at, sc.Duration)
		}
		return w, nil
	}

	// Initial tenants land at window 0.
	for _, t := range sc.Tenants {
		p.Actions = append(p.Actions, Action{Kind: ActCreateTenant, Tenant: t.ID, Tier: t.Tier})
		for _, db := range t.Databases {
			p.Actions = append(p.Actions, Action{
				Kind:   ActCreateDatabase,
				Tenant: t.ID,
				Spec: fleet.DatabaseSpec{
					ID:        db.ID,
					Blueprint: db.Blueprint,
					Plan:      db.Plan,
					Shape:     shapeAt(db.Load, 0),
				},
			})
		}
	}

	for i, ev := range sc.Events {
		what := fmt.Sprintf("event %d (%s)", i+1, ev.Kind)
		w, err := windowOf(ev.At, what)
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		switch ev.Kind {
		case EvCreateTenant:
			p.Actions = append(p.Actions, Action{Window: w, Kind: ActCreateTenant, Tenant: ev.Tenant, Tier: ev.Tier})
		case EvDeleteTenant:
			p.Actions = append(p.Actions, Action{Window: w, Kind: ActDeleteTenant, Tenant: ev.Tenant})
		case EvCreateDatabase:
			p.Actions = append(p.Actions, Action{
				Window: w, Kind: ActCreateDatabase, Tenant: ev.Tenant,
				Spec: fleet.DatabaseSpec{
					ID:        ev.Database,
					Blueprint: ev.Blueprint,
					Plan:      ev.Plan,
					Shape:     shapeAt(ev.Load, w),
				},
			})
		case EvDeleteDatabase:
			p.Actions = append(p.Actions, Action{Window: w, Kind: ActDeleteDatabase, Tenant: ev.Tenant, Database: ev.Database})
		case EvResize:
			p.Actions = append(p.Actions, Action{Window: w, Kind: ActResize, Tenant: ev.Tenant, Database: ev.Database, Plan: ev.Plan})
		case EvOnboardWave:
			if ev.Every%sc.Window != 0 {
				return nil, fmt.Errorf("scenario: %s: stagger %s is not a whole number of %s windows", what, ev.Every, sc.Window)
			}
			if ev.OffboardAfter%sc.Window != 0 {
				return nil, fmt.Errorf("scenario: %s: offboard-after %s is not a whole number of %s windows", what, ev.OffboardAfter, sc.Window)
			}
			for n := 0; n < ev.Count; n++ {
				join := ev.At + time.Duration(n)*ev.Every
				jw, err := windowOf(join, fmt.Sprintf("%s tenant %d", what, n))
				if err != nil {
					return nil, fmt.Errorf("scenario: %w", err)
				}
				tid := fmt.Sprintf("%s-%02d", ev.Prefix, n)
				p.Actions = append(p.Actions, Action{Window: jw, Kind: ActCreateTenant, Tenant: tid, Tier: ev.Tier})
				for k := 0; k < ev.Databases; k++ {
					p.Actions = append(p.Actions, Action{
						Window: jw, Kind: ActCreateDatabase, Tenant: tid,
						Spec: fleet.DatabaseSpec{
							ID:        fmt.Sprintf("db-%02d", k),
							Blueprint: ev.Blueprint,
							Plan:      ev.Plan,
							Shape:     shapeAt(ev.Load, jw),
						},
					})
				}
				if ev.OffboardAfter > 0 {
					lw, err := windowOf(join+ev.OffboardAfter, fmt.Sprintf("%s offboard %d", what, n))
					if err != nil {
						return nil, fmt.Errorf("scenario: %w", err)
					}
					p.Actions = append(p.Actions, Action{Window: lw, Kind: ActDeleteTenant, Tenant: tid})
				}
			}
		}
	}

	sort.SliceStable(p.Actions, func(i, j int) bool { return p.Actions[i].Window < p.Actions[j].Window })

	if err := p.dryRun(); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return p, nil
}

// simDB / simTenant mirror the fleet service's desired-state records
// for the compile-time replay.
type simDB struct {
	phase    tenant.Phase
	warmup   int
	plan     string
	pending  string
	deleting bool
}

type simTenant struct {
	tier    string
	deleted bool
	dbs     map[string]*simDB
}

// dryRun statically replays the schedule against the same rules the
// fleet service enforces at runtime (fleet.Service mutations +
// reconcile), so every rejected scenario is rejected before a fleet is
// built. The replay also records the capacity preview.
func (p *Plan) dryRun() error {
	tenants := map[string]*simTenant{}
	byWindow := map[int][]Action{}
	for _, a := range p.Actions {
		byWindow[a.Window] = append(byWindow[a.Window], a)
	}

	live := 0
	for w := 0; w < p.Windows; w++ {
		for _, a := range byWindow[w] {
			if err := p.applySim(tenants, a); err != nil {
				return fmt.Errorf("window %d: %s %s: %w", w, a.Kind, a.Tenant, err)
			}
		}
		// Reconcile pass: same transitions, sorted order.
		for _, tid := range sortedKeys(tenants) {
			ts := tenants[tid]
			for _, did := range sortedKeys(ts.dbs) {
				db := ts.dbs[did]
				switch {
				case db.deleting && db.phase == tenant.Pending:
					delete(ts.dbs, did)
				case db.deleting && db.phase == tenant.Draining:
					delete(ts.dbs, did)
					live--
				case db.deleting:
					db.phase = tenant.Draining
				case db.pending != "":
					db.plan = db.pending
					db.pending = ""
					db.phase = tenant.WarmUp
					db.warmup = p.Tiers[ts.tier].WarmupWindows
				case db.phase == tenant.Pending:
					db.phase = tenant.WarmUp
					db.warmup = p.Tiers[ts.tier].WarmupWindows
					live++
					p.TotalProvisions++
				case db.phase == tenant.WarmUp:
					if db.warmup > 0 {
						db.warmup--
					}
					if db.warmup == 0 {
						db.phase = tenant.Tuned
					}
				}
			}
			if ts.deleted && len(ts.dbs) == 0 {
				delete(tenants, tid)
			}
		}
		if live > p.PeakInstances {
			p.PeakInstances = live
		}
	}
	if p.TotalProvisions == 0 {
		return fmt.Errorf("schedule never provisions a database")
	}
	return nil
}

// applySim mirrors the fleet service's mutation checks.
func (p *Plan) applySim(tenants map[string]*simTenant, a Action) error {
	switch a.Kind {
	case ActCreateTenant:
		if _, ok := p.Tiers[a.Tier]; !ok {
			return fmt.Errorf("unknown tier %q", a.Tier)
		}
		if _, dup := tenants[a.Tenant]; dup {
			return fmt.Errorf("tenant already exists")
		}
		tenants[a.Tenant] = &simTenant{tier: a.Tier, dbs: map[string]*simDB{}}
	case ActDeleteTenant:
		ts, ok := tenants[a.Tenant]
		if !ok {
			return fmt.Errorf("unknown tenant")
		}
		if len(ts.dbs) == 0 {
			delete(tenants, a.Tenant)
			return nil
		}
		ts.deleted = true
		for _, db := range ts.dbs {
			db.deleting = true
		}
	case ActCreateDatabase:
		ts, ok := tenants[a.Tenant]
		if !ok {
			return fmt.Errorf("unknown tenant")
		}
		if ts.deleted {
			return fmt.Errorf("tenant is being deprovisioned")
		}
		bp, ok := p.Blueprints[a.Spec.Blueprint]
		if !ok {
			return fmt.Errorf("unknown blueprint %q", a.Spec.Blueprint)
		}
		tier := p.Tiers[ts.tier]
		plan := a.Spec.Plan
		if plan == "" {
			plan = bp.Plan
		}
		if _, err := cluster.TypeByName(plan); err != nil {
			return err
		}
		if !tier.AllowsPlan(plan) {
			return fmt.Errorf("tier %q does not allow plan %q (allowed: %v)", tier.Name, plan, tier.AllowedPlans)
		}
		if len(ts.dbs) >= tier.MaxInstances {
			return fmt.Errorf("tier %q quota reached (%d instances)", tier.Name, tier.MaxInstances)
		}
		if _, dup := ts.dbs[a.Spec.ID]; dup {
			return fmt.Errorf("database %q already exists", a.Spec.ID)
		}
		ts.dbs[a.Spec.ID] = &simDB{phase: tenant.Pending, plan: plan}
	case ActDeleteDatabase:
		ts, ok := tenants[a.Tenant]
		if !ok {
			return fmt.Errorf("unknown tenant")
		}
		db, ok := ts.dbs[a.Database]
		if !ok {
			return fmt.Errorf("unknown database %q", a.Database)
		}
		if db.deleting {
			return fmt.Errorf("database %q is already being deprovisioned", a.Database)
		}
		db.deleting = true
	case ActResize:
		ts, ok := tenants[a.Tenant]
		if !ok {
			return fmt.Errorf("unknown tenant")
		}
		db, ok := ts.dbs[a.Database]
		if !ok {
			return fmt.Errorf("unknown database %q", a.Database)
		}
		if db.deleting {
			return fmt.Errorf("database %q is being deprovisioned", a.Database)
		}
		if _, err := cluster.TypeByName(a.Plan); err != nil {
			return err
		}
		tier := p.Tiers[ts.tier]
		if !tier.AllowsPlan(a.Plan) {
			return fmt.Errorf("tier %q does not allow plan %q (allowed: %v)", tier.Name, a.Plan, tier.AllowedPlans)
		}
		if a.Plan == db.plan && db.pending == "" {
			return fmt.Errorf("database %q is already on plan %q", a.Database, a.Plan)
		}
		if db.phase == tenant.Pending {
			db.plan = a.Plan
			return nil
		}
		db.pending = a.Plan
	}
	return nil
}

// apply replays one action against a live fleet service.
func (a Action) apply(svc *fleet.Service) error {
	switch a.Kind {
	case ActCreateTenant:
		return svc.CreateTenant(tenant.Tenant{ID: a.Tenant, Tier: a.Tier})
	case ActDeleteTenant:
		return svc.DeleteTenant(a.Tenant)
	case ActCreateDatabase:
		return svc.CreateDatabase(a.Tenant, a.Spec)
	case ActDeleteDatabase:
		return svc.DeleteDatabase(a.Tenant, a.Database)
	case ActResize:
		return svc.ResizeDatabase(a.Tenant, a.Database, a.Plan)
	}
	return fmt.Errorf("scenario: unknown action kind %q", a.Kind)
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
