package scenario

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseYAMLShapes(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want any
	}{
		{"scalar map", "a: 1\nb: two\n", map[string]any{"a": "1", "b": "two"}},
		{"nested map", "a:\n  b: 1\n", map[string]any{"a": map[string]any{"b": "1"}}},
		{"list of scalars", "xs:\n  - 1\n  - 2\n", map[string]any{"xs": []any{"1", "2"}}},
		{"list of maps", "xs:\n  - k: 1\n  - k: 2\n",
			map[string]any{"xs": []any{map[string]any{"k": "1"}, map[string]any{"k": "2"}}}},
		{"inline map", "m: {a: 1, b: 2}\n", map[string]any{"m": map[string]any{"a": "1", "b": "2"}}},
		{"inline list", "l: [1, 2]\n", map[string]any{"l": []any{"1", "2"}}},
		{"quoted scalar", `s: "a: b"` + "\n", map[string]any{"s": "a: b"}},
		{"comment stripped", "a: 1 # trailing\n# full line\nb: 2\n", map[string]any{"a": "1", "b": "2"}},
		{"doc marker", "---\na: 1\n", map[string]any{"a": "1"}},
		{"seq item with nested block", "xs:\n  - k:\n      a: 1\n    j: 2\n",
			map[string]any{"xs": []any{map[string]any{"k": map[string]any{"a": "1"}, "j": "2"}}}},
		{"seq item key with seq value", "xs:\n  - k:\n      - 1\n      - 2\n",
			map[string]any{"xs": []any{map[string]any{"k": []any{"1", "2"}}}}},
		{"empty value", "a:\nb: 1\n", map[string]any{"a": "", "b": "1"}},
		{"indented scalar value", "a:\n  plain scalar!\n", map[string]any{"a": "plain scalar!"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := parseYAML(tc.src)
			if err != nil {
				t.Fatalf("parseYAML(%q): %v", tc.src, err)
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("parseYAML(%q)\n got %#v\nwant %#v", tc.src, got, tc.want)
			}
		})
	}
}

func TestParseYAMLErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"tab indent", "a:\n\tb: 1\n", "tab"},
		{"block scalar", "a: |\n  x\n", "block scalar"},
		{"anchor", "a: &x 1\n", "anchor"},
		{"alias", "a: *x\n", "anchor"},
		{"nested inline", "a: {b: {c: 1}}\n", "nested inline"},
		{"bad indent", "a:\n  b: 1\n c: 2\n", "indent"},
		{"duplicate key", "a: 1\na: 2\n", "duplicate key"},
		{"seq where map", "a: 1\n- b\n", "sequence item"},
		{"unclosed quote", `a: "oops` + "\n", "quote"},
		{"second document", "a: 1\n---\nb: 2\n", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseYAML(tc.src)
			if err == nil {
				t.Fatalf("parseYAML(%q): expected error", tc.src)
			}
			if tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("parseYAML(%q): error %q does not mention %q", tc.src, err, tc.wantErr)
			}
		})
	}
}

func TestParseDuration(t *testing.T) {
	cases := []struct {
		in   string
		want string
		err  bool
	}{
		{"30m", "30m0s", false},
		{"2h", "2h0m0s", false},
		{"1d", "24h0m0s", false},
		{"2d12h", "60h0m0s", false},
		{"1d30m", "24h30m0s", false},
		{"bogus", "", true},
		{"-5m", "-5m0s", false},
	}
	for _, tc := range cases {
		got, err := parseDuration(tc.in)
		if tc.err {
			if err == nil {
				t.Errorf("parseDuration(%q): expected error, got %v", tc.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseDuration(%q): %v", tc.in, err)
			continue
		}
		if got.String() != tc.want {
			t.Errorf("parseDuration(%q) = %v, want %s", tc.in, got, tc.want)
		}
	}
}
