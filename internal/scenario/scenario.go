// Package scenario is the declarative campaign layer of AutoDBaaS: a
// YAML DSL describing multi-day service traffic — diurnal load curves,
// flash crowds, batch and maintenance windows, long-horizon drift,
// tenant onboarding/offboarding waves, resizes and fault profiles —
// compiled into a deterministic virtual-time event schedule and
// replayed against the fleet service through the existing engine seam,
// flat or sharded. One file reproduces one evaluation campaign
// bit-for-bit: the schedule is a pure function of the document, every
// engine seed derives from the scenario seed, and the timeline the
// runner emits (throttles, SLO violations, retries, escalations,
// provision latency per window) is byte-stable across runs and
// parallelism levels.
package scenario

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"autodbaas/internal/faults"
	"autodbaas/internal/tenant"
	"autodbaas/internal/workload"
)

// Scenario is one parsed scenario document, still declarative: Compile
// turns it into a windowed action schedule.
type Scenario struct {
	Name        string
	Description string
	Seed        int64
	Window      time.Duration
	Duration    time.Duration

	// SLOP99Ms scores per-window SLO violations: every instance whose
	// window P99 exceeds it counts one violation. 0 disables scoring.
	SLOP99Ms float64

	// FaultProfile/FaultSeed select deterministic chaos for the whole
	// run ("" runs clean; the runner can override for sweeps).
	FaultProfile string
	FaultSeed    int64

	// Blueprints are scenario-local templates, merged over (and
	// allowed to shadow) the built-in catalogue.
	Blueprints []tenant.Blueprint

	// Tenants are declared before the first window.
	Tenants []TenantDecl

	// Events mutate the fleet at later windows.
	Events []Event
}

// TenantDecl declares a tenant and its initial databases.
type TenantDecl struct {
	ID        string
	Tier      string
	Databases []DatabaseDecl
}

// DatabaseDecl declares one database: the blueprint it is stamped
// from, an optional plan override, and an optional load shape.
type DatabaseDecl struct {
	ID        string
	Blueprint string
	Plan      string
	Load      workload.Shape
}

// Event kinds.
const (
	EvCreateTenant   = "create-tenant"
	EvDeleteTenant   = "delete-tenant"
	EvCreateDatabase = "create-database"
	EvDeleteDatabase = "delete-database"
	EvResize         = "resize"
	EvOnboardWave    = "onboard-wave"
)

// Event is one scheduled mutation. Exactly one kind per event; the
// fields used depend on the kind.
type Event struct {
	At   time.Duration
	Kind string

	Tenant   string
	Database string
	Tier     string

	Blueprint string
	Plan      string
	Load      workload.Shape

	// Wave fields (EvOnboardWave): Count tenants named Prefix-00…,
	// staggered Every apart, each with Databases databases; a non-zero
	// OffboardAfter deletes each wave tenant that long after it joined.
	Prefix        string
	Count         int
	Every         time.Duration
	Databases     int
	OffboardAfter time.Duration
}

// Parse decodes and validates one scenario document. The returned
// scenario is structurally sound (all names, durations, curves and
// profiles check out); Compile additionally proves the schedule is
// runnable (quotas, conflicts, lifecycle ordering).
func Parse(src string) (*Scenario, error) {
	root, err := parseYAML(src)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	m, ok := root.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("scenario: document is not a mapping")
	}
	d := &decoder{}
	sc := d.scenario(m)
	if d.err != nil {
		return nil, fmt.Errorf("scenario: %w", d.err)
	}
	if err := sc.validate(); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return sc, nil
}

// validate checks everything local to the document.
func (sc *Scenario) validate() error {
	if !tenant.ValidID(sc.Name) {
		return fmt.Errorf("name %q is not a valid identifier (lowercase alphanumeric with ._-)", sc.Name)
	}
	if sc.Window < time.Minute {
		return fmt.Errorf("window %s must be at least 1m", sc.Window)
	}
	if sc.Window%time.Minute != 0 {
		return fmt.Errorf("window %s must be whole minutes", sc.Window)
	}
	if sc.Duration < sc.Window {
		return fmt.Errorf("duration %s is shorter than one window (%s)", sc.Duration, sc.Window)
	}
	if sc.Duration%sc.Window != 0 {
		return fmt.Errorf("duration %s is not a whole number of %s windows", sc.Duration, sc.Window)
	}
	if sc.SLOP99Ms < 0 {
		return fmt.Errorf("slo p99-ms %v cannot be negative", sc.SLOP99Ms)
	}
	if sc.FaultProfile != "" {
		if _, err := faults.ParseProfile(sc.FaultProfile); err != nil {
			return err
		}
	}
	for _, bp := range sc.Blueprints {
		if err := bp.Validate(); err != nil {
			return err
		}
	}
	if len(sc.Tenants)+len(sc.Events) == 0 {
		return fmt.Errorf("scenario declares no tenants and no events")
	}
	seen := map[string]bool{}
	for _, t := range sc.Tenants {
		if !tenant.ValidID(t.ID) {
			return fmt.Errorf("tenant ID %q is not a valid identifier", t.ID)
		}
		if seen[t.ID] {
			return fmt.Errorf("tenant %q declared twice", t.ID)
		}
		seen[t.ID] = true
		if t.Tier == "" {
			return fmt.Errorf("tenant %q needs a tier", t.ID)
		}
		dbSeen := map[string]bool{}
		for _, db := range t.Databases {
			if !tenant.ValidID(db.ID) {
				return fmt.Errorf("tenant %q: database ID %q is not a valid identifier", t.ID, db.ID)
			}
			if dbSeen[db.ID] {
				return fmt.Errorf("tenant %q: database %q declared twice", t.ID, db.ID)
			}
			dbSeen[db.ID] = true
			if db.Blueprint == "" {
				return fmt.Errorf("database %s/%s needs a blueprint", t.ID, db.ID)
			}
			if err := db.Load.Validate(); err != nil {
				return fmt.Errorf("database %s/%s: %w", t.ID, db.ID, err)
			}
		}
	}
	for i, ev := range sc.Events {
		if err := ev.validate(); err != nil {
			return fmt.Errorf("event %d (%s at %s): %w", i+1, ev.Kind, ev.At, err)
		}
	}
	return nil
}

// validate checks one event's own fields.
func (ev Event) validate() error {
	if ev.At < 0 {
		return fmt.Errorf("negative time %s", ev.At)
	}
	needTenant := func() error {
		if ev.Tenant == "" {
			return fmt.Errorf("needs a tenant")
		}
		return nil
	}
	switch ev.Kind {
	case EvCreateTenant:
		if err := needTenant(); err != nil {
			return err
		}
		if ev.Tier == "" {
			return fmt.Errorf("needs a tier")
		}
	case EvDeleteTenant:
		return needTenant()
	case EvCreateDatabase:
		if err := needTenant(); err != nil {
			return err
		}
		if !tenant.ValidID(ev.Database) {
			return fmt.Errorf("database ID %q is not a valid identifier", ev.Database)
		}
		if ev.Blueprint == "" {
			return fmt.Errorf("needs a blueprint")
		}
		if err := ev.Load.Validate(); err != nil {
			return err
		}
	case EvDeleteDatabase:
		if err := needTenant(); err != nil {
			return err
		}
		if ev.Database == "" {
			return fmt.Errorf("needs a database")
		}
	case EvResize:
		if err := needTenant(); err != nil {
			return err
		}
		if ev.Database == "" {
			return fmt.Errorf("needs a database")
		}
		if ev.Plan == "" {
			return fmt.Errorf("needs a plan")
		}
	case EvOnboardWave:
		if !tenant.ValidID(ev.Prefix) {
			return fmt.Errorf("wave prefix %q is not a valid identifier", ev.Prefix)
		}
		if ev.Tier == "" {
			return fmt.Errorf("needs a tier")
		}
		if ev.Blueprint == "" {
			return fmt.Errorf("needs a blueprint")
		}
		if ev.Count < 1 || ev.Count > 128 {
			return fmt.Errorf("wave count %d outside [1,128]", ev.Count)
		}
		if ev.Databases < 0 || ev.Databases > 16 {
			return fmt.Errorf("wave databases %d outside [0,16]", ev.Databases)
		}
		if ev.Count > 1 && ev.Every <= 0 {
			return fmt.Errorf("wave of %d tenants needs a positive stagger (every)", ev.Count)
		}
		if ev.Every < 0 || ev.OffboardAfter < 0 {
			return fmt.Errorf("negative wave interval")
		}
		if err := ev.Load.Validate(); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown event kind %q", ev.Kind)
	}
	return nil
}

// decoder walks the generic YAML tree with strict field sets: unknown
// keys are errors, so a typo'd scenario fails loudly instead of
// silently dropping a curve. The first error sticks.
type decoder struct {
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

// obj asserts a mapping and rejects keys outside the allowed set.
func (d *decoder) obj(v any, ctx string, allowed ...string) map[string]any {
	if d.err != nil {
		return nil
	}
	m, ok := v.(map[string]any)
	if !ok {
		d.fail("%s: expected a mapping", ctx)
		return nil
	}
	for k := range m {
		found := false
		for _, a := range allowed {
			if k == a {
				found = true
				break
			}
		}
		if !found {
			d.fail("%s: unknown key %q (allowed: %s)", ctx, k, strings.Join(allowed, ", "))
			return nil
		}
	}
	return m
}

func (d *decoder) list(v any, ctx string) []any {
	if d.err != nil {
		return nil
	}
	if v == nil {
		return nil
	}
	l, ok := v.([]any)
	if !ok {
		d.fail("%s: expected a list", ctx)
		return nil
	}
	return l
}

func (d *decoder) str(m map[string]any, key, ctx string) string {
	if d.err != nil || m[key] == nil {
		return ""
	}
	s, ok := m[key].(string)
	if !ok {
		d.fail("%s: %s must be a scalar", ctx, key)
		return ""
	}
	return s
}

func (d *decoder) float(m map[string]any, key, ctx string) float64 {
	s := d.str(m, key, ctx)
	if d.err != nil || s == "" {
		return 0
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		d.fail("%s: %s: %q is not a number", ctx, key, s)
		return 0
	}
	return f
}

func (d *decoder) int(m map[string]any, key, ctx string) int {
	s := d.str(m, key, ctx)
	if d.err != nil || s == "" {
		return 0
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		d.fail("%s: %s: %q is not an integer", ctx, key, s)
		return 0
	}
	return n
}

func (d *decoder) int64(m map[string]any, key, ctx string) int64 {
	s := d.str(m, key, ctx)
	if d.err != nil || s == "" {
		return 0
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		d.fail("%s: %s: %q is not an integer", ctx, key, s)
		return 0
	}
	return n
}

func (d *decoder) bool(m map[string]any, key, ctx string) bool {
	s := d.str(m, key, ctx)
	if d.err != nil || s == "" {
		return false
	}
	switch s {
	case "true":
		return true
	case "false":
		return false
	}
	d.fail("%s: %s: %q is not a boolean", ctx, key, s)
	return false
}

// dur parses durations, additionally accepting a whole-day suffix
// ("2d", "1d12h") that time.ParseDuration lacks — multi-day drift is
// the DSL's bread and butter.
func (d *decoder) dur(m map[string]any, key, ctx string) time.Duration {
	s := d.str(m, key, ctx)
	if d.err != nil || s == "" {
		return 0
	}
	v, err := parseDuration(s)
	if err != nil {
		d.fail("%s: %s: %v", ctx, key, err)
		return 0
	}
	return v
}

// parseDuration is time.ParseDuration plus a leading "<n>d" day part.
func parseDuration(s string) (time.Duration, error) {
	rest := s
	var days int64
	if i := strings.IndexByte(s, 'd'); i > 0 {
		if n, err := strconv.ParseInt(s[:i], 10, 64); err == nil {
			days = n
			rest = s[i+1:]
		}
	}
	if days < 0 {
		return 0, fmt.Errorf("duration %q is negative", s)
	}
	var tail time.Duration
	if rest != "" {
		var err error
		tail, err = time.ParseDuration(rest)
		if err != nil {
			return 0, fmt.Errorf("duration %q: %v", s, err)
		}
	}
	return time.Duration(days)*24*time.Hour + tail, nil
}

// minutes converts a duration field to whole virtual minutes.
func (d *decoder) minutes(m map[string]any, key, ctx string) int {
	v := d.dur(m, key, ctx)
	if d.err != nil {
		return 0
	}
	if v%time.Minute != 0 {
		d.fail("%s: %s: %s must be whole minutes", ctx, key, v)
		return 0
	}
	return int(v / time.Minute)
}

// scenario decodes the document root.
func (d *decoder) scenario(m map[string]any) *Scenario {
	root := d.obj(m, "scenario",
		"name", "description", "seed", "window", "duration", "slo", "faults",
		"blueprints", "tenants", "events")
	if d.err != nil {
		return nil
	}
	sc := &Scenario{
		Name:        d.str(root, "name", "scenario"),
		Description: d.str(root, "description", "scenario"),
		Seed:        d.int64(root, "seed", "scenario"),
		Window:      d.dur(root, "window", "scenario"),
		Duration:    d.dur(root, "duration", "scenario"),
	}
	if v, ok := root["slo"]; ok {
		slo := d.obj(v, "slo", "p99-ms")
		sc.SLOP99Ms = d.float(slo, "p99-ms", "slo")
	}
	if v, ok := root["faults"]; ok {
		f := d.obj(v, "faults", "profile", "seed")
		sc.FaultProfile = d.str(f, "profile", "faults")
		sc.FaultSeed = d.int64(f, "seed", "faults")
	}
	for i, v := range d.list(root["blueprints"], "blueprints") {
		sc.Blueprints = append(sc.Blueprints, d.blueprint(v, fmt.Sprintf("blueprint %d", i+1)))
	}
	for i, v := range d.list(root["tenants"], "tenants") {
		sc.Tenants = append(sc.Tenants, d.tenant(v, fmt.Sprintf("tenant %d", i+1)))
	}
	for i, v := range d.list(root["events"], "events") {
		sc.Events = append(sc.Events, d.event(v, fmt.Sprintf("event %d", i+1)))
	}
	return sc
}

func (d *decoder) blueprint(v any, ctx string) tenant.Blueprint {
	m := d.obj(v, ctx, "name", "engine", "plan", "slaves", "workload",
		"tick-every", "mode", "gate-samples")
	if d.err != nil {
		return tenant.Blueprint{}
	}
	bp := tenant.Blueprint{
		Name:        d.str(m, "name", ctx),
		Engine:      d.str(m, "engine", ctx),
		Plan:        d.str(m, "plan", ctx),
		Slaves:      d.int(m, "slaves", ctx),
		Mode:        d.str(m, "mode", ctx),
		GateSamples: d.bool(m, "gate-samples", ctx),
	}
	if _, ok := m["tick-every"]; ok {
		bp.TickEveryMin = d.minutes(m, "tick-every", ctx)
	}
	if wv, ok := m["workload"]; ok {
		w := d.obj(wv, ctx+" workload", "class", "size-gib", "rate", "mix")
		bp.Workload = tenant.WorkloadSpec{
			Class:   d.str(w, "class", ctx),
			SizeGiB: d.float(w, "size-gib", ctx),
			Rate:    d.float(w, "rate", ctx),
			Mix:     d.float(w, "mix", ctx),
		}
	}
	return bp
}

func (d *decoder) tenant(v any, ctx string) TenantDecl {
	m := d.obj(v, ctx, "id", "tier", "databases")
	if d.err != nil {
		return TenantDecl{}
	}
	t := TenantDecl{
		ID:   d.str(m, "id", ctx),
		Tier: d.str(m, "tier", ctx),
	}
	for i, dv := range d.list(m["databases"], ctx+" databases") {
		t.Databases = append(t.Databases, d.database(dv, fmt.Sprintf("%s database %d", ctx, i+1)))
	}
	return t
}

func (d *decoder) database(v any, ctx string) DatabaseDecl {
	m := d.obj(v, ctx, "id", "blueprint", "plan", "load")
	if d.err != nil {
		return DatabaseDecl{}
	}
	return DatabaseDecl{
		ID:        d.str(m, "id", ctx),
		Blueprint: d.str(m, "blueprint", ctx),
		Plan:      d.str(m, "plan", ctx),
		Load:      d.shape(m["load"], ctx),
	}
}

// event decodes "- at: 6h\n  <kind>: {...}": exactly one action key
// besides "at".
func (d *decoder) event(v any, ctx string) Event {
	m, ok := v.(map[string]any)
	if !ok {
		d.fail("%s: expected a mapping", ctx)
		return Event{}
	}
	ev := Event{}
	if _, ok := m["at"]; !ok {
		d.fail("%s: needs an \"at\" time", ctx)
		return Event{}
	}
	ev.At = d.dur(m, "at", ctx)
	var kinds []string
	for k := range m {
		if k != "at" {
			kinds = append(kinds, k)
		}
	}
	if len(kinds) != 1 {
		sort.Strings(kinds)
		d.fail("%s: needs exactly one action, got %d (%s)", ctx, len(kinds), strings.Join(kinds, ", "))
		return Event{}
	}
	ev.Kind = kinds[0]
	body := m[ev.Kind]
	switch ev.Kind {
	case EvCreateTenant:
		b := d.obj(body, ctx, "id", "tier")
		ev.Tenant = d.str(b, "id", ctx)
		ev.Tier = d.str(b, "tier", ctx)
	case EvDeleteTenant:
		b := d.obj(body, ctx, "id")
		ev.Tenant = d.str(b, "id", ctx)
	case EvCreateDatabase:
		b := d.obj(body, ctx, "tenant", "id", "blueprint", "plan", "load")
		ev.Tenant = d.str(b, "tenant", ctx)
		ev.Database = d.str(b, "id", ctx)
		ev.Blueprint = d.str(b, "blueprint", ctx)
		ev.Plan = d.str(b, "plan", ctx)
		ev.Load = d.shape(b["load"], ctx)
	case EvDeleteDatabase:
		b := d.obj(body, ctx, "tenant", "id")
		ev.Tenant = d.str(b, "tenant", ctx)
		ev.Database = d.str(b, "id", ctx)
	case EvResize:
		b := d.obj(body, ctx, "tenant", "id", "plan")
		ev.Tenant = d.str(b, "tenant", ctx)
		ev.Database = d.str(b, "id", ctx)
		ev.Plan = d.str(b, "plan", ctx)
	case EvOnboardWave:
		b := d.obj(body, ctx, "prefix", "count", "every", "tier", "blueprint",
			"plan", "databases", "offboard-after", "load")
		ev.Prefix = d.str(b, "prefix", ctx)
		ev.Count = d.int(b, "count", ctx)
		ev.Every = d.dur(b, "every", ctx)
		ev.Tier = d.str(b, "tier", ctx)
		ev.Blueprint = d.str(b, "blueprint", ctx)
		ev.Plan = d.str(b, "plan", ctx)
		ev.Databases = 1
		if _, ok := b["databases"]; ok {
			ev.Databases = d.int(b, "databases", ctx)
		}
		ev.OffboardAfter = d.dur(b, "offboard-after", ctx)
		ev.Load = d.shape(b["load"], ctx)
	default:
		d.fail("%s: unknown event kind %q", ctx, ev.Kind)
	}
	return ev
}

// shape decodes a load list: "- <kind>: {params}" per term.
func (d *decoder) shape(v any, ctx string) workload.Shape {
	var sh workload.Shape
	for i, tv := range d.list(v, ctx+" load") {
		tctx := fmt.Sprintf("%s load term %d", ctx, i+1)
		m, ok := tv.(map[string]any)
		if !ok || len(m) != 1 {
			d.fail("%s: expected one \"- kind: {...}\" entry", tctx)
			return sh
		}
		var kind string
		for k := range m {
			kind = k
		}
		sh.Terms = append(sh.Terms, d.term(kind, m[kind], tctx))
	}
	return sh
}

func (d *decoder) term(kind string, v any, ctx string) workload.Term {
	t := workload.Term{Kind: kind}
	switch kind {
	case workload.TermDiurnal:
		b := d.obj(v, ctx, "peak", "trough", "peak-at")
		t.Factor = d.float(b, "peak", ctx)
		t.Trough = d.float(b, "trough", ctx)
		t.PeakMin = d.minutes(b, "peak-at", ctx)
	case workload.TermSpike:
		b := d.obj(v, ctx, "at", "for", "x")
		t.AtMin = d.minutes(b, "at", ctx)
		t.DurMin = d.minutes(b, "for", ctx)
		t.Factor = d.float(b, "x", ctx)
	case workload.TermBatch:
		b := d.obj(v, ctx, "start", "every", "for", "x")
		t.AtMin = d.minutes(b, "start", ctx)
		t.EveryMin = d.minutes(b, "every", ctx)
		t.DurMin = d.minutes(b, "for", ctx)
		t.Factor = d.float(b, "x", ctx)
	case workload.TermDrift:
		b := d.obj(v, ctx, "after", "over", "x")
		t.AtMin = d.minutes(b, "after", ctx)
		t.DurMin = d.minutes(b, "over", ctx)
		t.Factor = d.float(b, "x", ctx)
	case workload.TermScale:
		b := d.obj(v, ctx, "x")
		t.Factor = d.float(b, "x", ctx)
	default:
		d.fail("%s: unknown load term kind %q (want diurnal|spike|batch|drift|scale)", ctx, kind)
	}
	return t
}
