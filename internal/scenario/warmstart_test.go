package scenario

import (
	"context"
	"testing"

	"autodbaas/scenarios"
)

// replayColdStartWave runs the library's cold-start-wave scenario once
// at the given warm-start setting and returns the result plus the
// fleet's warm-start counts.
func replayColdStartWave(t *testing.T, warm bool) (*Result, [3]int64) {
	t.Helper()
	src, err := scenarios.Source("cold-start-wave")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := sc.Compile()
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(plan, RunConfig{Parallelism: 4, WarmStart: warm})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	res, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	h, m, s := r.Service().WarmStartCounts()
	return res, [3]int64{h, m, s}
}

// TestWarmStartReducesColdStartThrottles is the scenario-level contract
// behind the benchrunner's +warm baseline row: replaying the onboarding
// burst with warm starts on must engage for every joiner (only the
// anchor starts cold) and end with strictly fewer throttles than the
// cold replay.
func TestWarmStartReducesColdStartThrottles(t *testing.T) {
	cold, coldCounts := replayColdStartWave(t, false)
	warm, warmCounts := replayColdStartWave(t, true)

	if coldCounts != [3]int64{} {
		t.Fatalf("cold replay touched the warm-start path: %v", coldCounts)
	}
	// 9 provisions: the anchor misses (empty repository), the 8 wave
	// joiners all find donors.
	if warmCounts[0] != 8 || warmCounts[1] != 1 || warmCounts[2] <= 0 {
		t.Fatalf("warm replay counts hits/misses/seeded = %v, want 8/1/>0", warmCounts)
	}
	if warm.Throttles >= cold.Throttles {
		t.Fatalf("warm replay throttled %d, cold %d — warm starts must strictly reduce cold-start throttles", warm.Throttles, cold.Throttles)
	}
}

// TestWarmStartReplayDeterministic: the warm replay is part of the
// committed baseline, so it must be bit-stable run over run like every
// library scenario.
func TestWarmStartReplayDeterministic(t *testing.T) {
	a, _ := replayColdStartWave(t, true)
	b, _ := replayColdStartWave(t, true)
	if a.Fingerprint != b.Fingerprint || a.Throttles != b.Throttles {
		t.Fatalf("warm replay not deterministic: fp %s/%s throttles %d/%d", a.Fingerprint, b.Fingerprint, a.Throttles, b.Throttles)
	}
}
