package scenario

import (
	"bytes"
	"context"
	"testing"

	"autodbaas/internal/shard"
	"autodbaas/scenarios"
)

func runLibrary(t *testing.T, name string, cfg RunConfig) *Result {
	t.Helper()
	src, err := scenarios.Source(name)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := Parse(src)
	if err != nil {
		t.Fatalf("%s: parse: %v", name, err)
	}
	p, err := sc.Compile()
	if err != nil {
		t.Fatalf("%s: compile: %v", name, err)
	}
	r, err := NewRunner(p, cfg)
	if err != nil {
		t.Fatalf("%s: runner: %v", name, err)
	}
	defer r.Close()
	res, err := r.Run(context.Background())
	if err != nil {
		t.Fatalf("%s: run: %v", name, err)
	}
	return res
}

func timelineCSV(t *testing.T, res *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func requireIdentical(t *testing.T, name, whatA, whatB string, a, b *Result) {
	t.Helper()
	if a.Fingerprint != b.Fingerprint {
		t.Errorf("%s: fingerprint diverged %s=%s %s=%s", name, whatA, a.Fingerprint, whatB, b.Fingerprint)
	}
	if a.Throttles != b.Throttles {
		t.Errorf("%s: throttles diverged %s=%d %s=%d", name, whatA, a.Throttles, whatB, b.Throttles)
	}
	ca, cb := timelineCSV(t, a), timelineCSV(t, b)
	if !bytes.Equal(ca, cb) {
		t.Errorf("%s: timeline CSV diverged between %s and %s", name, whatA, whatB)
	}
}

func testShards() []shard.Config {
	return []shard.Config{
		{Name: "s0", Seed: 1, Parallelism: 2},
		{Name: "s1", Seed: 2, Parallelism: 2},
		{Name: "s2", Seed: 3, Parallelism: 2},
	}
}

// TestLibraryDeterminism replays every library scenario and holds the
// determinism contract:
//
//   - flat runs are bit-identical across parallelism (P=1/4/16):
//     same fingerprint, same throttle counts, byte-identical timeline;
//   - the same holds under a medium fault-profile override;
//   - a sharded run is bit-identical run-over-run;
//   - flat and sharded agree on the control-plane projection (tenants,
//     instances, provisions, deprovisions, resizes per window).
//
// Flat and sharded data planes are NOT expected to produce identical
// fingerprints: a flat fleet shares one tuner pool while each shard
// owns its own (see DESIGN.md "Scenario DSL").
func TestLibraryDeterminism(t *testing.T) {
	for _, name := range scenarios.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			flat1 := runLibrary(t, name, RunConfig{Parallelism: 1})
			flat4 := runLibrary(t, name, RunConfig{Parallelism: 4})
			requireIdentical(t, name, "P=1", "P=4", flat1, flat4)

			if !testing.Short() {
				flat16 := runLibrary(t, name, RunConfig{Parallelism: 16})
				requireIdentical(t, name, "P=1", "P=16", flat1, flat16)

				f1 := runLibrary(t, name, RunConfig{Parallelism: 1, FaultProfile: "medium"})
				f4 := runLibrary(t, name, RunConfig{Parallelism: 4, FaultProfile: "medium"})
				requireIdentical(t, name, "medium/P=1", "medium/P=4", f1, f4)
			}

			shardA := runLibrary(t, name, RunConfig{Shards: testShards()})
			shardB := runLibrary(t, name, RunConfig{Shards: testShards()})
			requireIdentical(t, name, "shard/run-1", "shard/run-2", shardA, shardB)

			// Flat vs sharded: control-plane projection must agree even
			// though the data planes (tuner pools) differ.
			if len(flat1.Timeline) != len(shardA.Timeline) {
				t.Fatalf("%s: timeline lengths differ flat=%d shard=%d", name, len(flat1.Timeline), len(shardA.Timeline))
			}
			for i := range flat1.Timeline {
				f, s := flat1.Timeline[i], shardA.Timeline[i]
				if f.Tenants != s.Tenants || f.Instances != s.Instances ||
					f.Provisions != s.Provisions || f.Deprovisions != s.Deprovisions || f.Resizes != s.Resizes {
					t.Fatalf("%s window %d: control plane diverged flat={t:%d i:%d p:%d d:%d r:%d} shard={t:%d i:%d p:%d d:%d r:%d}",
						name, f.Window, f.Tenants, f.Instances, f.Provisions, f.Deprovisions, f.Resizes,
						s.Tenants, s.Instances, s.Provisions, s.Deprovisions, s.Resizes)
				}
			}
		})
	}
}

// TestLibraryCompiles pins cheap structural facts for every library
// scenario so a broken YAML fails fast with a readable message.
func TestLibraryCompiles(t *testing.T) {
	names := scenarios.Names()
	if len(names) < 10 {
		t.Fatalf("library has %d scenarios, want at least 10", len(names))
	}
	for _, name := range names {
		src, err := scenarios.Source(name)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		if sc.Name != name {
			t.Errorf("%s: scenario name %q does not match its file", name, sc.Name)
		}
		p, err := sc.Compile()
		if err != nil {
			t.Fatalf("%s: compile: %v", name, err)
		}
		if p.TotalProvisions == 0 || p.PeakInstances == 0 {
			t.Errorf("%s: compiles to an empty campaign: %+v", name, p)
		}
	}
}
