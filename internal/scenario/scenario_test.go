package scenario

import (
	"strings"
	"testing"

	"autodbaas/internal/fleet"
	"autodbaas/internal/tenant"
	"autodbaas/internal/workload"
)

// validDoc is the smallest scenario every invalid-case test mutates.
const validDoc = `name: t
seed: 1
window: 30m
duration: 2h
tenants:
  - id: a
    tier: dev
    databases:
      - id: db
        blueprint: pg-oltp-small
`

func TestParseValid(t *testing.T) {
	sc, err := Parse(validDoc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if sc.Name != "t" || sc.Seed != 1 || len(sc.Tenants) != 1 {
		t.Fatalf("Parse: unexpected scenario %+v", sc)
	}
	p, err := sc.Compile()
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if p.Windows != 4 || p.TotalProvisions != 1 || p.PeakInstances != 1 {
		t.Fatalf("Compile: windows=%d provisions=%d peak=%d", p.Windows, p.TotalProvisions, p.PeakInstances)
	}
}

// TestInvalidScenarios is the schema-error table: every case must be
// rejected by Parse or Compile with a message mentioning wantErr — and
// because all validation happens before a fleet exists, a rejected
// scenario can never have mutated one.
func TestInvalidScenarios(t *testing.T) {
	cases := []struct {
		name    string
		src     string
		wantErr string
	}{
		{"empty document", "", "empty"},
		{"unknown root key", validDoc + "bogus: 1\n", `unknown key "bogus"`},
		{"bad name", strings.Replace(validDoc, "name: t", "name: Bad Name!", 1), "identifier"},
		{"window too small", strings.Replace(validDoc, "window: 30m", "window: 30s", 1), "at least 1m"},
		{"window not whole minutes", strings.Replace(validDoc, "window: 30m", "window: 90s", 1), "whole minutes"},
		{"duration shorter than window", strings.Replace(validDoc, "duration: 2h", "duration: 10m", 1), "shorter than one window"},
		{"duration not whole windows", strings.Replace(validDoc, "duration: 2h", "duration: 100m", 1), "whole number"},
		{"negative slo", validDoc + "slo:\n  p99-ms: -1\n", "negative"},
		{"unknown fault profile", validDoc + "faults:\n  profile: catastrophic\n", "profile"},
		{"no tenants or events", "name: t\nseed: 1\nwindow: 30m\nduration: 2h\n", "no tenants"},
		{"duplicate tenant", strings.Replace(validDoc, "  - id: a\n", "  - id: a\n    tier: dev\n  - id: a\n", 1), "twice"},
		{"tenant missing tier", strings.Replace(validDoc, "    tier: dev\n", "", 1), "tier"},
		{"bad database id", strings.Replace(validDoc, "id: db", "id: UPPER", 1), "identifier"},
		{"duplicate database", strings.Replace(validDoc,
			"      - id: db\n", "      - id: db\n        blueprint: pg-oltp-small\n      - id: db\n", 1), "twice"},
		{"database missing blueprint", strings.Replace(validDoc, "        blueprint: pg-oltp-small\n", "", 1), "blueprint"},
		{"unknown blueprint", strings.Replace(validDoc, "pg-oltp-small", "no-such-bp", 1), "unknown blueprint"},
		{"unknown tier", strings.Replace(validDoc, "tier: dev", "tier: platinum", 1), "unknown tier"},
		{"plan not in tier", strings.Replace(validDoc,
			"        blueprint: pg-oltp-small\n", "        blueprint: pg-oltp-small\n        plan: m4.xlarge\n", 1), "does not allow"},
		{"unknown plan", strings.Replace(validDoc,
			"        blueprint: pg-oltp-small\n", "        blueprint: pg-oltp-small\n        plan: t9.mega\n", 1), "t9.mega"},
		{"diurnal zero trough", validDoc + `        load:
          - diurnal: {peak: 1.2, trough: 0, peak-at: 10h}
`, "trough"},
		{"diurnal negative peak", validDoc + `        load:
          - diurnal: {peak: -2, trough: 0.5, peak-at: 10h}
`, "factor"},
		{"diurnal peak-at out of range", validDoc + `        load:
          - diurnal: {peak: 1.2, trough: 0.5, peak-at: 25h}
`, "peak"},
		{"spike zero duration", validDoc + `        load:
          - spike: {at: 1h, for: 0m, x: 2}
`, "duration"},
		{"spike negative start", validDoc + `        load:
          - spike: {at: -1h, for: 30m, x: 2}
`, ""},
		{"batch period shorter than burst", validDoc + `        load:
          - batch: {start: 0m, every: 1h, for: 2h, x: 2}
`, "period"},
		{"unknown load term", validDoc + `        load:
          - sawtooth: {x: 2}
`, "sawtooth"},
		{"load not whole minutes", validDoc + `        load:
          - spike: {at: 90s, for: 30m, x: 2}
`, "whole minutes"},
		{"event off window boundary", validDoc + `events:
  - at: 45m
    delete-database:
      tenant: a
      id: db
`, "window boundary"},
		{"event past scenario end", validDoc + `events:
  - at: 2h
    delete-database:
      tenant: a
      id: db
`, "past the scenario end"},
		{"event with two actions", validDoc + `events:
  - at: 30m
    delete-database:
      tenant: a
      id: db
    delete-tenant:
      id: a
`, "exactly one action"},
		{"event missing at", validDoc + `events:
  - delete-tenant:
      id: a
`, `"at"`},
		{"unknown event kind", validDoc + `events:
  - at: 30m
    explode:
      id: a
`, "unknown event kind"},
		{"delete unknown database", validDoc + `events:
  - at: 30m
    delete-database:
      tenant: a
      id: nope
`, "unknown database"},
		{"double delete conflicts", validDoc + `events:
  - at: 30m
    delete-database:
      tenant: a
      id: db
  - at: 30m
    delete-database:
      tenant: a
      id: db
`, "already being deprovisioned"},
		{"create on deleted tenant", validDoc + `events:
  - at: 30m
    delete-tenant:
      id: a
  - at: 30m
    create-database:
      tenant: a
      id: late
      blueprint: pg-oltp-small
`, "deprovisioned"},
		{"resize to same plan", validDoc + `events:
  - at: 30m
    resize:
      tenant: a
      id: db
      plan: t2.medium
`, "already on plan"},
		{"resize unknown tenant", validDoc + `events:
  - at: 30m
    resize:
      tenant: ghost
      id: db
      plan: t2.small
`, "unknown tenant"},
		{"quota exceeded", validDoc + `events:
  - at: 30m
    onboard-wave:
      prefix: w
      count: 1
      tier: dev
      blueprint: pg-oltp-small
      databases: 5
`, "quota"},
		{"wave count out of range", validDoc + `events:
  - at: 30m
    onboard-wave:
      prefix: w
      count: 200
      every: 30m
      tier: dev
      blueprint: pg-oltp-small
`, "count"},
		{"wave needs stagger", validDoc + `events:
  - at: 30m
    onboard-wave:
      prefix: w
      count: 2
      tier: dev
      blueprint: pg-oltp-small
`, "stagger"},
		{"wave stagger off windows", validDoc + `events:
  - at: 30m
    onboard-wave:
      prefix: w
      count: 2
      every: 45m
      tier: dev
      blueprint: pg-oltp-small
`, "whole number"},
		{"wave offboard past end", validDoc + `events:
  - at: 30m
    onboard-wave:
      prefix: w
      count: 1
      tier: dev
      blueprint: pg-oltp-small
      offboard-after: 4h
`, "past the scenario end"},
		{"tab indentation", "name: t\n\tseed: 1\n", "tab"},
		{"non-integer seed", strings.Replace(validDoc, "seed: 1", "seed: one", 1), "integer"},
		{"never provisions", `name: t
seed: 1
window: 30m
duration: 1h
events:
  - at: 30m
    create-tenant:
      id: a
      tier: dev
`, "never provisions"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc, err := Parse(tc.src)
			if err == nil {
				_, err = sc.Compile()
			}
			if err == nil {
				t.Fatalf("scenario accepted:\n%s", tc.src)
			}
			if tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestRejectedActionsLeaveFleetUnmutated drives the same mutations the
// compiler rejects against a live fleet and proves failed applies are
// no-ops: the fleet's summary and fingerprint are unchanged.
func TestRejectedActionsLeaveFleetUnmutated(t *testing.T) {
	sc, err := Parse(validDoc)
	if err != nil {
		t.Fatal(err)
	}
	p, err := sc.Compile()
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(p, RunConfig{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	svc := r.Service()
	for _, a := range p.Actions {
		if err := a.apply(svc); err != nil {
			t.Fatalf("apply %s: %v", a.Kind, err)
		}
	}
	if _, err := svc.Step(sc.Window); err != nil {
		t.Fatal(err)
	}
	before, err := svc.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	beforeSum := svc.Summary()

	bad := []Action{
		{Kind: ActCreateTenant, Tenant: "a", Tier: "dev"},                                                         // duplicate tenant
		{Kind: ActCreateTenant, Tenant: "b", Tier: "platinum"},                                                    // unknown tier
		{Kind: ActCreateDatabase, Tenant: "ghost", Spec: fleet.DatabaseSpec{ID: "x", Blueprint: "pg-oltp-small"}}, // unknown tenant
		{Kind: ActCreateDatabase, Tenant: "a", Spec: fleet.DatabaseSpec{ID: "db", Blueprint: "pg-oltp-small"}},    // duplicate db
		{Kind: ActCreateDatabase, Tenant: "a", Spec: fleet.DatabaseSpec{ID: "y", Blueprint: "nope"}},              // unknown blueprint
		{Kind: ActCreateDatabase, Tenant: "a", Spec: fleet.DatabaseSpec{ID: "z", Blueprint: "pg-analytics"}},      // plan outside tier
		{Kind: ActDeleteDatabase, Tenant: "a", Database: "nope"},                                                  // unknown db
		{Kind: ActResize, Tenant: "a", Database: "db", Plan: "t2.medium"},                                         // same plan
		{Kind: ActResize, Tenant: "a", Database: "db", Plan: "m4.xlarge"},                                         // plan outside tier
	}
	for _, a := range bad {
		if err := a.apply(svc); err == nil {
			t.Fatalf("bad action %s %s unexpectedly succeeded", a.Kind, a.Tenant)
		}
	}

	after, err := svc.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fingerprintHash(before) != fingerprintHash(after) {
		t.Fatalf("fingerprint changed after rejected actions: %s -> %s",
			fingerprintHash(before), fingerprintHash(after))
	}
	if beforeSum != svc.Summary() {
		t.Fatalf("summary changed after rejected actions: %+v -> %+v", beforeSum, svc.Summary())
	}
}

// TestShapePlumbing checks a shaped spec survives the
// WorkloadSpec.Build seam: the shape multiplies the base rate.
func TestShapePlumbing(t *testing.T) {
	src := validDoc + `        load:
          - scale: {x: 0.25}
`
	sc, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	decl := sc.Tenants[0].Databases[0]
	if len(decl.Load.Terms) != 1 || decl.Load.Terms[0].Factor != 0.25 {
		t.Fatalf("load terms not decoded: %+v", decl.Load)
	}
	spec := tenant.WorkloadSpec{Class: "ycsb", SizeGiB: 1, Rate: 1000, Mix: 0.5, Shape: &decl.Load}
	gen, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := gen.RequestRate(workload.SimEpoch); got != 250 {
		t.Fatalf("shaped rate = %v, want 250", got)
	}
}
