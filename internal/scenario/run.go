package scenario

import (
	"context"
	"fmt"
	"sync"
	"time"

	"autodbaas/internal/faults"
	"autodbaas/internal/fleet"
	"autodbaas/internal/knobs"
	"autodbaas/internal/obs"
	"autodbaas/internal/safety"
	"autodbaas/internal/shard"
	"autodbaas/internal/tenant"
	"autodbaas/internal/tuner"
	"autodbaas/internal/tuner/bo"
)

// RunConfig selects the layout a compiled plan replays on. The layout
// is orthogonal to the scenario: the same plan runs flat at any
// parallelism or across shards, and the determinism tests hold the
// timeline identical across flat parallelism levels and sharded
// layouts run-over-run.
type RunConfig struct {
	// Parallelism is the flat engine's step worker bound (ignored when
	// Shards is set).
	Parallelism int
	// Tuners is the flat engine's BO pool size (default 1).
	Tuners int
	// Shards switches to the sharded engine: one in-process shard per
	// config. Shard seeds/tuners come from the configs; the scenario's
	// fault profile is filled into any config that names none.
	Shards []shard.Config
	// FaultProfile overrides the scenario's profile ("" keeps it;
	// "zero" forces a clean run with injection plumbing active).
	FaultProfile string
	// TimeScale paces the replay: virtual seconds per wall second
	// (e.g. 120 replays a 24h scenario in 12 wall minutes). 0 runs
	// flat out.
	TimeScale float64
	// WarmStart turns on fleet warm starts: new instances seed their
	// tuner history and starting config from workload-similar donors
	// already in the repository. Flat layout only — a sharded layout
	// with WarmStart set fails fleet validation.
	WarmStart bool
	// Safety arms the safe-tuning gate (default options): shadow canary
	// plus trust region in front of every apply, automatic rollback
	// behind it. On a sharded layout the options are filled into any
	// shard config that doesn't set its own.
	Safety bool
}

// Status is the runner's live snapshot, served at GET /v1/scenario.
type Status struct {
	Scenario      string  `json:"scenario"`
	Window        int     `json:"window"`
	Windows       int     `json:"windows"`
	VirtualMin    int     `json:"virtual_min"`
	Tenants       int     `json:"tenants"`
	Instances     int     `json:"instances"`
	Throttles     int     `json:"throttles_total"`
	SLOViolations int     `json:"slo_violations_total"`
	ActionsDone   int     `json:"actions_applied"`
	ActionsTotal  int     `json:"actions_total"`
	TimeScale     float64 `json:"time_scale,omitempty"`
	Done          bool    `json:"done"`
	Error         string  `json:"error,omitempty"`
}

// Runner replays one compiled plan against a fleet service.
type Runner struct {
	plan *Plan
	cfg  RunConfig
	svc  *fleet.Service

	mu     sync.Mutex
	status Status

	m scenarioMetrics
}

type scenarioMetrics struct {
	window    *obs.Gauge
	throttles *obs.Counter
	sloViol   *obs.Counter
	actions   *obs.Counter
}

func newScenarioMetrics(r *obs.Registry) scenarioMetrics {
	return scenarioMetrics{
		window:    r.Gauge("autodbaas_scenario_window", "Current window index of the running scenario replay."),
		throttles: r.Counter("autodbaas_scenario_throttles_total", "Throttles observed by the scenario replay."),
		sloViol:   r.Counter("autodbaas_scenario_slo_violations_total", "Instance-windows over the scenario's P99 SLO."),
		actions:   r.Counter("autodbaas_scenario_actions_total", "Schedule actions applied by the scenario replay."),
	}
}

// NewRunner builds the fleet service a plan replays on. Every seed
// derives from the scenario seed, so (scenario file, RunConfig layout)
// fully determines the outcome.
func NewRunner(p *Plan, cfg RunConfig) (*Runner, error) {
	sc := p.Scenario
	profile := sc.FaultProfile
	if cfg.FaultProfile != "" {
		profile = cfg.FaultProfile
	}
	faultSeed := sc.FaultSeed
	if faultSeed == 0 {
		faultSeed = sc.Seed
	}

	fcfg := fleet.Config{
		Seed:        sc.Seed,
		Parallelism: cfg.Parallelism,
		Tiers:       p.Tiers,
		Blueprints:  p.Blueprints,
	}
	if cfg.WarmStart {
		// Donor history is thin early in a replay (one sample per
		// window per instance) — a couple of windows is enough to beat
		// a cold start, so don't demand the library default's six.
		fcfg.WarmStart = &fleet.WarmStartConfig{MinDonorSamples: 2}
	}
	var safetyOpts *safety.Options
	if cfg.Safety {
		o := safety.DefaultOptions()
		safetyOpts = &o
	}
	if len(cfg.Shards) > 0 {
		for _, scfg := range cfg.Shards {
			if scfg.FaultProfile == "" {
				scfg.FaultProfile = profile
				scfg.FaultSeed = faultSeed
			}
			if scfg.Safety == nil {
				scfg.Safety = safetyOpts
			}
			fcfg.Shards = append(fcfg.Shards, scfg)
		}
	} else {
		fcfg.Safety = safetyOpts
		n := cfg.Tuners
		if n < 1 {
			n = 1
		}
		tuners := make([]tuner.Tuner, 0, n)
		for i := 0; i < n; i++ {
			t, err := bo.New(bo.Options{Engine: knobs.Postgres, Candidates: 60, MaxSamplesPerFit: 60, UCBBeta: 0.5, Seed: sc.Seed + int64(i)})
			if err != nil {
				return nil, err
			}
			tuners = append(tuners, t)
		}
		fcfg.Tuners = tuners
		if profile != "" {
			prof, err := faults.ParseProfile(profile)
			if err != nil {
				return nil, err
			}
			fcfg.Faults = faults.New(faultSeed, prof)
		}
	}
	svc, err := fleet.New(fcfg)
	if err != nil {
		return nil, err
	}
	return &Runner{
		plan: p,
		cfg:  cfg,
		svc:  svc,
		status: Status{
			Scenario:     sc.Name,
			Windows:      p.Windows,
			ActionsTotal: len(p.Actions),
			TimeScale:    cfg.TimeScale,
		},
		m: newScenarioMetrics(obs.Default()),
	}, nil
}

// Service exposes the fleet under replay — for mounting HTTP surfaces
// and for tests. Close it via Runner.Close.
func (r *Runner) Service() *fleet.Service { return r.svc }

// Close releases the underlying fleet service.
func (r *Runner) Close() error { return r.svc.Close() }

// Status returns the live replay snapshot.
func (r *Runner) Status() Status {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.status
}

// Run replays the schedule to completion (or ctx cancellation),
// returning the timeline result. Run must be called at most once.
func (r *Runner) Run(ctx context.Context) (*Result, error) {
	p, sc := r.plan, r.plan.Scenario
	windowMin := int(p.Window / time.Minute)
	res := &Result{
		Scenario:  sc.Name,
		Seed:      sc.Seed,
		Windows:   p.Windows,
		WindowMin: windowMin,
		SLOP99Ms:  sc.SLOP99Ms,
		Timeline:  make([]Point, 0, p.Windows),
	}

	byWindow := map[int][]Action{}
	for _, a := range p.Actions {
		byWindow[a.Window] = append(byWindow[a.Window], a)
	}
	// createdAt tracks declaration windows for provision latency:
	// declared at window w, Tuned observed after window w' ⇒ latency
	// (w'+1)-w windows of virtual time.
	createdAt := map[string]int{}
	actionsDone := 0

	fail := func(err error) (*Result, error) {
		r.mu.Lock()
		r.status.Done = true
		r.status.Error = err.Error()
		r.mu.Unlock()
		return nil, err
	}

	for w := 0; w < p.Windows; w++ {
		wallStart := time.Now()
		if err := ctx.Err(); err != nil {
			return fail(fmt.Errorf("scenario %q interrupted at window %d: %w", sc.Name, w, err))
		}
		for _, a := range byWindow[w] {
			if err := a.apply(r.svc); err != nil {
				return fail(fmt.Errorf("scenario %q window %d: %s %s: %w", sc.Name, w, a.Kind, a.Tenant, err))
			}
			if a.Kind == ActCreateDatabase {
				createdAt[a.Tenant+"/"+a.Spec.ID] = w
			}
			actionsDone++
			r.m.actions.Inc()
		}

		step, err := r.svc.Step(p.Window)
		if err != nil {
			return fail(fmt.Errorf("scenario %q window %d: step: %w", sc.Name, w, err))
		}

		sloViol := 0
		maxP99 := 0.0
		for _, p99 := range step.P99Ms {
			if p99 > maxP99 {
				maxP99 = p99
			}
			if sc.SLOP99Ms > 0 && p99 > sc.SLOP99Ms {
				sloViol++
			}
		}
		for id, cw := range createdAt {
			tid, did := splitInstanceID(id)
			db, ok := r.svc.GetDatabase(tid, did)
			if !ok {
				delete(createdAt, id) // deleted before it tuned
				continue
			}
			if db.Phase == tenant.Tuned.String() {
				res.noteProvisionLatency(w + 1 - cw)
				delete(createdAt, id)
			}
		}

		counters, err := r.svc.Counters()
		if err != nil {
			return fail(fmt.Errorf("scenario %q window %d: counters: %w", sc.Name, w, err))
		}
		sum := r.svc.Summary()
		res.Throttles += step.Throttles
		res.SLOViolations += sloViol
		pt := Point{
			Window:        w + 1,
			VirtualMin:    (w + 1) * windowMin,
			Tenants:       sum.Tenants,
			Instances:     sum.Instances,
			Throttles:     step.Throttles,
			ThrottlesTot:  res.Throttles,
			SLOViolations: sloViol,
			SLOViolTot:    res.SLOViolations,
			Retries:       counters.Retries,
			Escalations:   counters.Escalations,
			Provisions:    int(sum.Provisions),
			Deprovisions:  int(sum.Deprovisions),
			Resizes:       int(sum.Resizes),
			Samples:       sum.Samples,
			Recs:          counters.Recommendations,
			ApplyFailures: counters.ApplyFailures,
			PlanUpgrades:  counters.PlanUpgrades,
			MaxP99Ms:      maxP99,
		}
		res.Timeline = append(res.Timeline, pt)
		if sum.Instances > res.PeakInstances {
			res.PeakInstances = sum.Instances
		}

		r.m.window.Set(float64(w + 1))
		r.m.throttles.Add(float64(step.Throttles))
		r.m.sloViol.Add(float64(sloViol))
		r.mu.Lock()
		r.status.Window = w + 1
		r.status.VirtualMin = pt.VirtualMin
		r.status.Tenants = sum.Tenants
		r.status.Instances = sum.Instances
		r.status.Throttles = res.Throttles
		r.status.SLOViolations = res.SLOViolations
		r.status.ActionsDone = actionsDone
		r.mu.Unlock()

		if r.cfg.TimeScale > 0 {
			wait := time.Duration(float64(p.Window)/r.cfg.TimeScale) - time.Since(wallStart)
			if wait > 0 {
				select {
				case <-ctx.Done():
					return fail(fmt.Errorf("scenario %q interrupted at window %d: %w", sc.Name, w+1, ctx.Err()))
				case <-time.After(wait):
				}
			}
		}
	}

	last := res.Timeline[len(res.Timeline)-1]
	res.Retries, res.Escalations = last.Retries, last.Escalations
	res.Provisions, res.Deprovisions, res.Resizes = last.Provisions, last.Deprovisions, last.Resizes
	if counters, err := r.svc.Counters(); err == nil {
		res.SafetyVetoes = counters.SafetyVetoes
		res.SafetyCanaryRuns = counters.SafetyCanaryRuns
		res.SafetyRollbacks = counters.SafetyRollbacks
		res.SafetyRegressing = counters.SafetyRegressing
	}
	fp, err := r.svc.Fingerprint()
	if err != nil {
		return fail(fmt.Errorf("scenario %q: fingerprint: %w", sc.Name, err))
	}
	res.Fingerprint = fingerprintHash(fp)

	r.mu.Lock()
	r.status.Done = true
	r.mu.Unlock()
	return res, nil
}

// splitInstanceID splits "<tenant>/<db>".
func splitInstanceID(id string) (string, string) {
	for i := 0; i < len(id); i++ {
		if id[i] == '/' {
			return id[:i], id[i+1:]
		}
	}
	return id, ""
}
