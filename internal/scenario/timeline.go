package scenario

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"strconv"

	"autodbaas/internal/fleet"
)

// Point is one window of the replay timeline. Every field is derived
// from virtual time and deterministic counters, so two runs of the
// same (scenario, layout) produce byte-identical timelines.
type Point struct {
	Window        int     `json:"window"`
	VirtualMin    int     `json:"virtual_min"`
	Tenants       int     `json:"tenants"`
	Instances     int     `json:"instances"`
	Throttles     int     `json:"throttles"`
	ThrottlesTot  int     `json:"throttles_total"`
	SLOViolations int     `json:"slo_violations"`
	SLOViolTot    int     `json:"slo_violations_total"`
	Retries       int     `json:"retries"`
	Escalations   int     `json:"escalations"`
	Provisions    int     `json:"provisions"`
	Deprovisions  int     `json:"deprovisions"`
	Resizes       int     `json:"resizes"`
	Samples       int     `json:"samples"`
	Recs          int     `json:"recommendations"`
	ApplyFailures int     `json:"apply_failures"`
	PlanUpgrades  int     `json:"plan_upgrades"`
	MaxP99Ms      float64 `json:"max_p99_ms"`
}

// Result is a finished replay: per-window timeline plus run totals.
type Result struct {
	Scenario      string  `json:"scenario"`
	Seed          int64   `json:"seed"`
	Windows       int     `json:"windows"`
	WindowMin     int     `json:"window_min"`
	SLOP99Ms      float64 `json:"slo_p99_ms,omitempty"`
	Throttles     int     `json:"throttles"`
	SLOViolations int     `json:"slo_violations"`
	Retries       int     `json:"retries"`
	Escalations   int     `json:"escalations"`
	Provisions    int     `json:"provisions"`
	Deprovisions  int     `json:"deprovisions"`
	Resizes       int     `json:"resizes"`
	PeakInstances int     `json:"peak_instances"`
	// Safe-tuning gate run totals (all zero — and omitted — when the
	// replay ran without the gate).
	SafetyVetoes     int `json:"safety_vetoes,omitempty"`
	SafetyCanaryRuns int `json:"safety_canary_runs,omitempty"`
	SafetyRollbacks  int `json:"safety_rollbacks,omitempty"`
	SafetyRegressing int `json:"safety_regressing_applies,omitempty"`
	// ProvisionLatency histograms create→Tuned latency in windows:
	// key = latency, value = instances that tuned at that latency.
	ProvisionLatency map[int]int `json:"provision_latency_windows,omitempty"`
	Fingerprint      string      `json:"fingerprint"`
	Timeline         []Point     `json:"timeline"`
}

func (r *Result) noteProvisionLatency(windows int) {
	if r.ProvisionLatency == nil {
		r.ProvisionLatency = map[int]int{}
	}
	r.ProvisionLatency[windows]++
}

// MeanProvisionLatency is the mean create→Tuned latency in windows
// (0 when nothing finished provisioning).
func (r *Result) MeanProvisionLatency() float64 {
	n, sum := 0, 0
	for lat, c := range r.ProvisionLatency {
		n += c
		sum += lat * c
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// csvHeader is the fixed timeline CSV column order; golden tests pin it.
const csvHeader = "window,virtual_min,tenants,instances,throttles,throttles_total," +
	"slo_violations,slo_violations_total,retries,escalations,provisions," +
	"deprovisions,resizes,samples,recommendations,apply_failures,plan_upgrades,max_p99_ms"

// WriteCSV emits the timeline with a fixed column order and fixed
// float formatting, suitable for byte-exact golden comparison.
func (r *Result) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, csvHeader+"\n"); err != nil {
		return err
	}
	for _, p := range r.Timeline {
		row := fmt.Sprintf("%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%s\n",
			p.Window, p.VirtualMin, p.Tenants, p.Instances, p.Throttles, p.ThrottlesTot,
			p.SLOViolations, p.SLOViolTot, p.Retries, p.Escalations, p.Provisions,
			p.Deprovisions, p.Resizes, p.Samples, p.Recs, p.ApplyFailures, p.PlanUpgrades,
			strconv.FormatFloat(p.MaxP99Ms, 'f', 3, 64))
		if _, err := io.WriteString(w, row); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON emits the full result as indented JSON with a trailing
// newline, also byte-stable (map keys marshal sorted).
func (r *Result) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// fingerprintHash reduces a fleet fingerprint to a short stable hex
// digest: FNV-64a over the canonical JSON of the sorted member prints.
func fingerprintHash(fp fleet.Fingerprint) string {
	members := fp.Members
	sort.Slice(members, func(i, j int) bool { return members[i].ID < members[j].ID })
	b, err := json.Marshal(fp)
	if err != nil {
		// Fingerprint is plain data; Marshal cannot fail on it.
		return "marshal-error"
	}
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("%016x", h.Sum64())
}
