package scenario

import (
	"fmt"
	"strings"
)

// This file is a small YAML-subset parser — the module is
// dependency-free by policy, and scenario files only need the plain
// core of YAML: nested mappings and sequences by two-or-more-space
// indentation, inline {k: v} maps and [a, b] lists one level deep,
// scalars kept as strings (the decoder in decode.go converts), "#"
// comments and blank lines. Anchors, aliases, multi-document streams,
// block scalars, tabs and flow nesting are rejected with positioned
// errors; FuzzParseScenario holds the parser to "error, never panic".

// maxYAMLLines and maxYAMLDepth bound parser recursion for fuzzing.
const (
	maxYAMLLines = 20000
	maxYAMLDepth = 24
)

// yamlLine is one significant source line.
type yamlLine struct {
	num    int // 1-based
	indent int
	text   string // content with indent and trailing comment stripped
}

// yamlErrf positions an error at a line.
func yamlErrf(num int, format string, args ...any) error {
	return fmt.Errorf("line %d: %s", num, fmt.Sprintf(format, args...))
}

// splitLines strips comments and blanks, measures indentation, and
// rejects tabs (YAML forbids them in indentation; allowing them inside
// values only invites silent misparses).
func splitLines(src string) ([]yamlLine, error) {
	raw := strings.Split(src, "\n")
	if len(raw) > maxYAMLLines {
		return nil, fmt.Errorf("scenario file too large (%d lines, max %d)", len(raw), maxYAMLLines)
	}
	var out []yamlLine
	for i, line := range raw {
		line = strings.TrimRight(line, " \r")
		indent := 0
		for indent < len(line) && line[indent] == ' ' {
			indent++
		}
		body := line[indent:]
		if strings.ContainsRune(body, '\t') {
			return nil, yamlErrf(i+1, "tab character (use spaces)")
		}
		body = stripComment(body)
		body = strings.TrimRight(body, " ")
		if body == "" {
			continue
		}
		if body == "---" && indent == 0 {
			if len(out) > 0 {
				return nil, yamlErrf(i+1, "multi-document streams are not supported")
			}
			continue
		}
		out = append(out, yamlLine{num: i + 1, indent: indent, text: body})
	}
	return out, nil
}

// stripComment removes a trailing "# ..." comment, respecting single
// and double quotes.
func stripComment(s string) string {
	inS, inD := false, false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\'':
			if !inD {
				inS = !inS
			}
		case '"':
			if !inS {
				inD = !inD
			}
		case '#':
			if !inS && !inD && (i == 0 || s[i-1] == ' ') {
				return s[:i]
			}
		}
	}
	return s
}

// parseYAML parses src into nested map[string]any / []any / string.
func parseYAML(src string) (any, error) {
	lines, err := splitLines(src)
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("empty document")
	}
	v, next, err := parseBlock(lines, 0, lines[0].indent, 0)
	if err != nil {
		return nil, err
	}
	if next < len(lines) {
		return nil, yamlErrf(lines[next].num, "unexpected de-indent to column %d", lines[next].indent)
	}
	return v, nil
}

// parseBlock parses the block starting at lines[i], whose members all
// sit at exactly `indent` columns. It returns the value and the index
// of the first line past the block.
func parseBlock(lines []yamlLine, i, indent, depth int) (any, int, error) {
	if depth > maxYAMLDepth {
		return nil, i, yamlErrf(lines[i].num, "nesting deeper than %d levels", maxYAMLDepth)
	}
	if strings.HasPrefix(lines[i].text, "- ") || lines[i].text == "-" {
		return parseSequence(lines, i, indent, depth)
	}
	if key, _, ok := splitKey(lines[i].text); ok && key != "" {
		return parseMapping(lines, i, indent, depth)
	}
	// A lone scalar block (only valid as a whole single-line value).
	if i+1 < len(lines) && lines[i+1].indent >= indent {
		return nil, i, yamlErrf(lines[i].num, "scalar %q cannot be followed by more block content", lines[i].text)
	}
	v, _, err := parseScalar(lines[i].text, lines[i].num, depth)
	return v, i + 1, err
}

// parseMapping parses "key: value" lines at one indent level.
func parseMapping(lines []yamlLine, i, indent, depth int) (any, int, error) {
	out := make(map[string]any)
	for i < len(lines) && lines[i].indent == indent {
		ln := lines[i]
		if strings.HasPrefix(ln.text, "- ") || ln.text == "-" {
			return nil, i, yamlErrf(ln.num, "sequence item in a mapping block")
		}
		key, rest, ok := splitKey(ln.text)
		if !ok {
			return nil, i, yamlErrf(ln.num, "expected \"key: value\", got %q", ln.text)
		}
		if _, dup := out[key]; dup {
			return nil, i, yamlErrf(ln.num, "duplicate key %q", key)
		}
		if rest != "" {
			v, _, err := parseScalar(rest, ln.num, depth+1)
			if err != nil {
				return nil, i, err
			}
			out[key] = v
			i++
			continue
		}
		// Block value: everything indented deeper on following lines.
		i++
		if i >= len(lines) || lines[i].indent <= indent {
			out[key] = "" // "key:" with nothing under it → empty scalar
			continue
		}
		v, next, err := parseBlock(lines, i, lines[i].indent, depth+1)
		if err != nil {
			return nil, i, err
		}
		out[key] = v
		i = next
	}
	if i < len(lines) && lines[i].indent > indent {
		return nil, i, yamlErrf(lines[i].num, "unexpected indent")
	}
	return out, i, nil
}

// isSeqLine reports whether a line opens a sequence item.
func isSeqLine(text string) bool { return strings.HasPrefix(text, "- ") || text == "-" }

// parseSequence parses "- item" lines at one indent level.
func parseSequence(lines []yamlLine, i, indent, depth int) (any, int, error) {
	var out []any
	for i < len(lines) && lines[i].indent == indent {
		ln := lines[i]
		if !isSeqLine(ln.text) {
			return nil, i, yamlErrf(ln.num, "expected \"- item\" in sequence, got %q", ln.text)
		}
		rest := strings.TrimPrefix(strings.TrimPrefix(ln.text, "-"), " ")
		if rest == "" {
			// "-" alone: the item is the deeper-indented block below.
			i++
			if i >= len(lines) || lines[i].indent <= indent {
				return nil, i, yamlErrf(ln.num, "empty sequence item")
			}
			v, next, err := parseBlock(lines, i, lines[i].indent, depth+1)
			if err != nil {
				return nil, i, err
			}
			out = append(out, v)
			i = next
			continue
		}
		if key, after, ok := splitKey(rest); ok && key != "" {
			// "- key: ..." starts an inline mapping item; its remaining
			// keys sit two columns past the dash.
			item := map[string]any{}
			if after != "" {
				v, _, err := parseScalar(after, ln.num, depth+1)
				if err != nil {
					return nil, i, err
				}
				item[key] = v
				i++
			} else {
				i++
				// The key's block value: anything indented past the
				// continuation column, or a sequence starting exactly on it.
				if i < len(lines) && (lines[i].indent > indent+2 ||
					(lines[i].indent == indent+2 && isSeqLine(lines[i].text))) {
					v, next, err := parseBlock(lines, i, lines[i].indent, depth+1)
					if err != nil {
						return nil, i, err
					}
					item[key] = v
					i = next
				} else {
					item[key] = ""
				}
			}
			for i < len(lines) && lines[i].indent == indent+2 && !isSeqLine(lines[i].text) {
				m, next, err := parseMapping(lines, i, indent+2, depth+1)
				if err != nil {
					return nil, i, err
				}
				for k, v := range m.(map[string]any) {
					if _, dup := item[k]; dup {
						return nil, i, yamlErrf(lines[i].num, "duplicate key %q", k)
					}
					item[k] = v
				}
				i = next
			}
			out = append(out, item)
			continue
		}
		v, _, err := parseScalar(rest, ln.num, depth+1)
		if err != nil {
			return nil, i, err
		}
		out = append(out, v)
		i++
	}
	if i < len(lines) && lines[i].indent > indent {
		return nil, i, yamlErrf(lines[i].num, "unexpected indent")
	}
	return out, i, nil
}

// splitKey splits "key: rest" or "key:". Keys are bare identifiers
// (letters, digits, '.', '_', '-'); anything else is not a mapping
// line.
func splitKey(s string) (key, rest string, ok bool) {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == ':' {
			if i == 0 {
				return "", "", false
			}
			if i+1 == len(s) {
				return s[:i], "", true
			}
			if s[i+1] == ' ' {
				return s[:i], strings.TrimLeft(s[i+1:], " "), true
			}
			return "", "", false
		}
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
			c == '.' || c == '_' || c == '-') {
			return "", "", false
		}
	}
	return "", "", false
}

// parseScalar parses an inline value: a quoted or bare string, or a
// one-level inline collection.
func parseScalar(s string, num, depth int) (any, int, error) {
	if depth > maxYAMLDepth {
		return nil, 0, yamlErrf(num, "nesting deeper than %d levels", maxYAMLDepth)
	}
	switch {
	case strings.HasPrefix(s, "{"):
		return parseInlineMap(s, num, depth)
	case strings.HasPrefix(s, "["):
		return parseInlineList(s, num, depth)
	case strings.HasPrefix(s, "|") || strings.HasPrefix(s, ">"):
		return nil, 0, yamlErrf(num, "block scalars are not supported")
	case strings.HasPrefix(s, "&") || strings.HasPrefix(s, "*"):
		return nil, 0, yamlErrf(num, "anchors and aliases are not supported")
	}
	return unquote(s, num)
}

// unquote strips matched single or double quotes.
func unquote(s string, num int) (string, int, error) {
	if len(s) >= 2 {
		if s[0] == '"' || s[0] == '\'' {
			if s[len(s)-1] != s[0] {
				return "", 0, yamlErrf(num, "unterminated quote in %q", s)
			}
			return s[1 : len(s)-1], 0, nil
		}
	}
	if s != "" && (s[0] == '"' || s[0] == '\'') {
		return "", 0, yamlErrf(num, "unterminated quote in %q", s)
	}
	return s, 0, nil
}

// splitInline splits the comma-separated body of an inline collection,
// respecting quotes. Nested inline collections are rejected — scenario
// files never need them and flow nesting is where hand-rolled parsers
// go wrong.
func splitInline(body string, num int) ([]string, error) {
	var parts []string
	start, inS, inD := 0, false, false
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '\'':
			if !inD {
				inS = !inS
			}
		case '"':
			if !inS {
				inD = !inD
			}
		case '{', '[':
			if !inS && !inD {
				return nil, yamlErrf(num, "nested inline collections are not supported")
			}
		case ',':
			if !inS && !inD {
				parts = append(parts, strings.TrimSpace(body[start:i]))
				start = i + 1
			}
		}
	}
	if inS || inD {
		return nil, yamlErrf(num, "unterminated quote in inline collection")
	}
	parts = append(parts, strings.TrimSpace(body[start:]))
	return parts, nil
}

// parseInlineMap parses "{k: v, k2: v2}".
func parseInlineMap(s string, num, depth int) (any, int, error) {
	if !strings.HasSuffix(s, "}") {
		return nil, 0, yamlErrf(num, "unterminated inline map %q", s)
	}
	body := strings.TrimSpace(s[1 : len(s)-1])
	out := make(map[string]any)
	if body == "" {
		return out, 0, nil
	}
	parts, err := splitInline(body, num)
	if err != nil {
		return nil, 0, err
	}
	for _, p := range parts {
		key, rest, ok := splitKey(p)
		if !ok || key == "" {
			return nil, 0, yamlErrf(num, "inline map entry %q is not \"key: value\"", p)
		}
		if _, dup := out[key]; dup {
			return nil, 0, yamlErrf(num, "duplicate key %q", key)
		}
		v, _, err := unquote(rest, num)
		if err != nil {
			return nil, 0, err
		}
		out[key] = v
	}
	return out, 0, nil
}

// parseInlineList parses "[a, b, c]".
func parseInlineList(s string, num, depth int) (any, int, error) {
	if !strings.HasSuffix(s, "]") {
		return nil, 0, yamlErrf(num, "unterminated inline list %q", s)
	}
	body := strings.TrimSpace(s[1 : len(s)-1])
	if body == "" {
		return []any{}, 0, nil
	}
	parts, err := splitInline(body, num)
	if err != nil {
		return nil, 0, err
	}
	out := make([]any, 0, len(parts))
	for _, p := range parts {
		v, _, err := unquote(p, num)
		if err != nil {
			return nil, 0, err
		}
		out = append(out, v)
	}
	return out, 0, nil
}
