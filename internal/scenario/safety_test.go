package scenario

import (
	"testing"
)

// requireSafetyIdentical extends requireIdentical with the gate's run
// totals — gate decisions are part of the determinism contract.
func requireSafetyIdentical(t *testing.T, name, whatA, whatB string, a, b *Result) {
	t.Helper()
	requireIdentical(t, name, whatA, whatB, a, b)
	if a.SafetyVetoes != b.SafetyVetoes || a.SafetyCanaryRuns != b.SafetyCanaryRuns ||
		a.SafetyRollbacks != b.SafetyRollbacks || a.SafetyRegressing != b.SafetyRegressing {
		t.Errorf("%s: safety totals diverged %s={v:%d c:%d r:%d x:%d} %s={v:%d c:%d r:%d x:%d}",
			name, whatA, a.SafetyVetoes, a.SafetyCanaryRuns, a.SafetyRollbacks, a.SafetyRegressing,
			whatB, b.SafetyVetoes, b.SafetyCanaryRuns, b.SafetyRollbacks, b.SafetyRegressing)
	}
}

// TestGatedReplayDeterminism holds the determinism contract for the
// safe-tuning gate on its nemesis campaign: gated replays are
// bit-identical across flat parallelism levels (clean and under the
// medium fault profile) and sharded run-over-run, gate counters
// included.
func TestGatedReplayDeterminism(t *testing.T) {
	const name = "tuning-regression"

	flat1 := runLibrary(t, name, RunConfig{Parallelism: 1, Safety: true})
	flat4 := runLibrary(t, name, RunConfig{Parallelism: 4, Safety: true})
	requireSafetyIdentical(t, name, "safe/P=1", "safe/P=4", flat1, flat4)
	if flat1.SafetyCanaryRuns == 0 {
		t.Error("gated replay never ran a canary — the gate is not engaged")
	}

	if !testing.Short() {
		flat16 := runLibrary(t, name, RunConfig{Parallelism: 16, Safety: true})
		requireSafetyIdentical(t, name, "safe/P=1", "safe/P=16", flat1, flat16)

		f1 := runLibrary(t, name, RunConfig{Parallelism: 1, Safety: true, FaultProfile: "medium"})
		f4 := runLibrary(t, name, RunConfig{Parallelism: 4, Safety: true, FaultProfile: "medium"})
		requireSafetyIdentical(t, name, "safe/medium/P=1", "safe/medium/P=4", f1, f4)
	}

	shardA := runLibrary(t, name, RunConfig{Shards: testShards(), Safety: true})
	shardB := runLibrary(t, name, RunConfig{Shards: testShards(), Safety: true})
	requireSafetyIdentical(t, name, "safe/shard/run-1", "safe/shard/run-2", shardA, shardB)
	if shardA.SafetyCanaryRuns == 0 {
		t.Error("sharded gated replay never ran a canary")
	}
}

// TestGatedReplayTouchesNothingWhenOff pins the gate-off invariant: a
// replay with Safety false reports zero gate activity, so every
// committed ungated golden and benchmark fingerprint stays valid.
func TestGatedReplayTouchesNothingWhenOff(t *testing.T) {
	res := runLibrary(t, "tuning-regression", RunConfig{Parallelism: 2})
	if res.SafetyVetoes != 0 || res.SafetyCanaryRuns != 0 || res.SafetyRollbacks != 0 || res.SafetyRegressing != 0 {
		t.Fatalf("ungated replay reported gate activity: %+v", res)
	}
}
