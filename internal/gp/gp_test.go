package gp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSEARDEvalSelfIsVariance(t *testing.T) {
	k := NewSEARD(3, 1.0, 2.5)
	x := []float64{0.1, -4, 7}
	if got := k.Eval(x, x); got != 2.5 {
		t.Fatalf("k(x,x) = %g, want 2.5", got)
	}
}

func TestSEARDSymmetricAndDecaying(t *testing.T) {
	k := NewSEARD(2, 0.5, 1.0)
	a, b := []float64{0, 0}, []float64{1, 1}
	if k.Eval(a, b) != k.Eval(b, a) {
		t.Fatal("kernel not symmetric")
	}
	c := []float64{3, 3}
	if !(k.Eval(a, b) > k.Eval(a, c)) {
		t.Fatal("kernel not decaying with distance")
	}
}

func TestFitRejectsEmptyAndMismatched(t *testing.T) {
	g := NewRegressor(NewSEARD(1, 1, 1), 1e-6)
	if err := g.Fit(nil, nil); !errors.Is(err, ErrNoData) {
		t.Fatalf("empty fit err = %v", err)
	}
	if err := g.Fit([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Fatal("mismatched fit accepted")
	}
}

func TestPredictBeforeFit(t *testing.T) {
	g := NewRegressor(NewSEARD(1, 1, 1), 1e-6)
	if _, _, err := g.Predict([]float64{0}); !errors.Is(err, ErrNotFitted) {
		t.Fatalf("err = %v, want ErrNotFitted", err)
	}
}

func TestPredictInterpolatesTrainingPoints(t *testing.T) {
	g := NewRegressor(NewSEARD(1, 1.0, 1.0), 1e-8)
	x := [][]float64{{-2}, {-1}, {0}, {1}, {2}}
	y := []float64{4, 1, 0, 1, 4} // x²
	if err := g.Fit(x, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	for i, xi := range x {
		m, v, err := g.Predict(xi)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(m-y[i]) > 1e-3 {
			t.Fatalf("mean at %v = %g, want %g", xi, m, y[i])
		}
		if v > 1e-3 {
			t.Fatalf("variance at training point = %g, want ~0", v)
		}
	}
}

func TestPredictVarianceGrowsAwayFromData(t *testing.T) {
	g := NewRegressor(NewSEARD(1, 1.0, 1.0), 1e-6)
	x := [][]float64{{0}, {1}}
	if err := g.Fit(x, []float64{0, 1}); err != nil {
		t.Fatal(err)
	}
	_, vNear, _ := g.Predict([]float64{0.5})
	_, vFar, _ := g.Predict([]float64{10})
	if !(vFar > vNear) {
		t.Fatalf("vFar = %g not > vNear = %g", vFar, vNear)
	}
}

func TestPredictRevertsToMeanFarAway(t *testing.T) {
	g := NewRegressor(NewSEARD(1, 1.0, 1.0), 1e-6)
	if err := g.Fit([][]float64{{0}, {1}, {2}}, []float64{3, 5, 7}); err != nil {
		t.Fatal(err)
	}
	m, _, _ := g.Predict([]float64{100})
	if math.Abs(m-5) > 1e-6 { // training mean is 5
		t.Fatalf("far-field mean = %g, want 5", m)
	}
}

func TestFitHandlesDuplicateSamples(t *testing.T) {
	// Near-singular kernel matrix: identical configs observed repeatedly,
	// exactly what production DB tuning traces contain.
	g := NewRegressor(NewSEARD(2, 1.0, 1.0), 1e-10)
	x := [][]float64{{1, 1}, {1, 1}, {1, 1}, {2, 2}}
	y := []float64{1, 1.01, 0.99, 2}
	if err := g.Fit(x, y); err != nil {
		t.Fatalf("duplicate-sample fit: %v", err)
	}
	m, _, err := g.Predict([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m-1.0) > 0.1 {
		t.Fatalf("duplicate prediction = %g, want ≈1", m)
	}
}

func TestLogMarginalLikelihoodPrefersTrueScale(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 30
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		xi := rng.Float64() * 10
		x[i] = []float64{xi}
		y[i] = math.Sin(xi) + 0.01*rng.NormFloat64()
	}
	good := NewRegressor(NewSEARD(1, 1.5, 1.0), 1e-4)
	bad := NewRegressor(NewSEARD(1, 0.01, 1.0), 1e-4)
	if err := good.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if err := bad.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	lg, err := good.LogMarginalLikelihood(y)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := bad.LogMarginalLikelihood(y)
	if err != nil {
		t.Fatal(err)
	}
	if !(lg > lb) {
		t.Fatalf("lml(good)=%g not > lml(bad)=%g", lg, lb)
	}
}

func TestUCBAndEI(t *testing.T) {
	g := NewRegressor(NewSEARD(1, 1.0, 1.0), 1e-6)
	if err := g.Fit([][]float64{{0}, {2}}, []float64{0, 2}); err != nil {
		t.Fatal(err)
	}
	ucb0, err := g.UCB([]float64{1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	ucb2, err := g.UCB([]float64{1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !(ucb2 > ucb0) {
		t.Fatalf("UCB beta=2 (%g) not > beta=0 (%g)", ucb2, ucb0)
	}
	// EI at an unexplored promising point should exceed EI at a known bad point.
	eiMid, err := g.ExpectedImprovement([]float64{5}, 2)
	if err != nil {
		t.Fatal(err)
	}
	eiKnown, err := g.ExpectedImprovement([]float64{0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !(eiMid > eiKnown) {
		t.Fatalf("EI(unexplored)=%g not > EI(known-bad)=%g", eiMid, eiKnown)
	}
	if eiMid < 0 || eiKnown < 0 {
		t.Fatal("EI must be non-negative")
	}
}

func TestStdNormCDFEndpoints(t *testing.T) {
	if got := stdNormCDF(0); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Φ(0) = %g", got)
	}
	if got := stdNormCDF(8); got < 0.9999 {
		t.Fatalf("Φ(8) = %g", got)
	}
	if got := stdNormCDF(-8); got > 1e-4 {
		t.Fatalf("Φ(-8) = %g", got)
	}
}

// Property: posterior variance is never negative and never (materially)
// exceeds prior variance + noise.
func TestVarianceBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		dim := 1 + rng.Intn(3)
		x := make([][]float64, n)
		y := make([]float64, n)
		for i := range x {
			row := make([]float64, dim)
			for d := range row {
				row[d] = rng.NormFloat64() * 3
			}
			x[i] = row
			y[i] = rng.NormFloat64()
		}
		g := NewRegressor(NewSEARD(dim, 1.0, 1.0), 1e-4)
		if err := g.Fit(x, y); err != nil {
			return true // near-singular draws may legitimately fail
		}
		q := make([]float64, dim)
		for d := range q {
			q[d] = rng.NormFloat64() * 5
		}
		_, v, err := g.Predict(q)
		if err != nil {
			return false
		}
		prior := 1.0 + 1e-4
		return v >= 0 && v <= prior*1.001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFitWithModelSelectionPicksBetterScale(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	n := 40
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		xi := rng.Float64() * 10
		x[i] = []float64{xi}
		y[i] = math.Sin(xi) + 0.01*rng.NormFloat64()
	}
	g := NewRegressor(NewSEARD(1, 0.01, 1.0), 1e-4)
	if err := g.FitWithModelSelection(x, y, []float64{0.01, 0.1, 0.5, 1.5, 5}); err != nil {
		t.Fatal(err)
	}
	k := g.Kernel.(*SEARD)
	if k.LengthScales[0] == 0.01 {
		t.Fatal("model selection kept the degenerate scale")
	}
	// Generalization: prediction at an unseen point close to sin().
	m, _, err := g.Predict([]float64{2.0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m-math.Sin(2.0)) > 0.25 {
		t.Fatalf("selected model predicts %g at x=2, want ≈%g", m, math.Sin(2.0))
	}
}

func TestFitWithModelSelectionValidation(t *testing.T) {
	g := NewRegressor(NewSEARD(1, 1, 1), 1e-4)
	if err := g.FitWithModelSelection([][]float64{{1}}, []float64{1}, nil); err == nil {
		t.Fatal("empty candidates accepted")
	}
	if err := g.FitWithModelSelection([][]float64{{1}, {2}}, []float64{1, 2}, []float64{-1}); err == nil {
		t.Fatal("negative scale accepted")
	}
}
