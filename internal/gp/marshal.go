package gp

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"autodbaas/internal/linalg"
)

// Binary state round-trip for a Regressor, shared by the checkpoint
// codec and usable standalone. The format is exact: every float64 is
// written as its IEEE-754 bit pattern, so an unmarshalled model is
// bit-for-bit the marshalled one — posterior means, variances and the
// incremental-refit bookkeeping all resume identically.
//
// Only the SE-ARD kernel is serializable (it is the only kernel the
// tuners construct); a custom Kernel implementation yields an error
// rather than a lossy snapshot.

// gpMagic identifies the serialized form; the trailing byte is the
// format version. Version 2 added the sparse inducing-point section
// (configuration and, when fitted sparse, the accumulator state) —
// written unconditionally, because a restored model that silently
// dropped its sparse configuration would diverge from a never-restored
// run the moment the training set crossed the threshold. Other versions
// are rejected outright.
var gpMagic = []byte{'G', 'P', 'R', 2}

// errNotSEARD rejects kernels the codec cannot capture.
var errNotSEARD = errors.New("gp: only SE-ARD kernels are serializable")

// MarshalBinary implements encoding.BinaryMarshaler.
func (g *Regressor) MarshalBinary() ([]byte, error) {
	k, ok := g.Kernel.(*SEARD)
	if !ok {
		return nil, errNotSEARD
	}
	var b bytes.Buffer
	b.Write(gpMagic)
	putF64 := func(v float64) {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		b.Write(buf[:])
	}
	putInt := func(v int) {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(v)))
		b.Write(buf[:])
	}
	putVec := func(v []float64) {
		putInt(len(v))
		for _, f := range v {
			putF64(f)
		}
	}
	putF64(k.Variance)
	putVec(k.LengthScales)
	putF64(g.Noise)
	putInt(g.FullRefitEvery)
	putInt(g.addsSinceFit)
	if g.jittered {
		putInt(1)
	} else {
		putInt(0)
	}
	putF64(g.mean)
	putInt(len(g.x))
	for _, row := range g.x {
		putVec(row)
	}
	putVec(g.ys)
	putVec(g.alpha)
	if g.chol == nil {
		putInt(-1)
	} else {
		putInt(g.chol.Rows)
		putInt(g.chol.Cols)
		putVec(g.chol.Data)
	}
	putMat := func(m *linalg.Matrix) {
		if m == nil {
			putInt(-1)
			return
		}
		putInt(m.Rows)
		putInt(m.Cols)
		putVec(m.Data)
	}
	// Version-2 sparse section: configuration always, state when fitted
	// sparse. Inducing inputs are stored as indices into x, which the
	// exact section above already carries.
	putInt(g.SparseThreshold)
	putInt(g.InducingPoints)
	if g.sparse == nil {
		putInt(0)
		return b.Bytes(), nil
	}
	st := g.sparse
	putInt(1)
	putInt(len(st.zidx))
	for _, id := range st.zidx {
		putInt(id)
	}
	putMat(st.cholKuu)
	putMat(st.b)
	putMat(st.cholB)
	putVec(st.alpha)
	putVec(st.sky)
	putVec(st.sk)
	putF64(st.sumY)
	putInt(st.fitN)
	return b.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler, replacing the
// receiver's kernel and entire fitted state.
func (g *Regressor) UnmarshalBinary(data []byte) error {
	if len(data) < len(gpMagic) || !bytes.Equal(data[:3], gpMagic[:3]) {
		return errors.New("gp: bad magic in serialized regressor")
	}
	if data[3] != gpMagic[3] {
		return fmt.Errorf("gp: serialized regressor version %d, want %d", data[3], gpMagic[3])
	}
	r := bytes.NewReader(data[len(gpMagic):])
	var err error
	getF64 := func() float64 {
		var buf [8]byte
		if _, e := r.Read(buf[:]); e != nil && err == nil {
			err = errors.New("gp: truncated serialized regressor")
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
	}
	getInt := func() int {
		var buf [8]byte
		if _, e := r.Read(buf[:]); e != nil && err == nil {
			err = errors.New("gp: truncated serialized regressor")
		}
		return int(int64(binary.LittleEndian.Uint64(buf[:])))
	}
	getVec := func() []float64 {
		n := getInt()
		if err != nil || n < 0 || n > r.Len()/8+1 {
			if err == nil {
				err = errors.New("gp: corrupt vector length in serialized regressor")
			}
			return nil
		}
		if n == 0 {
			return nil
		}
		v := make([]float64, n)
		for i := range v {
			v[i] = getF64()
		}
		return v
	}
	variance := getF64()
	scales := getVec()
	noise := getF64()
	refitEvery := getInt()
	adds := getInt()
	jittered := getInt() != 0
	mean := getF64()
	nx := getInt()
	if err != nil || nx < 0 || nx > len(data) {
		if err == nil {
			err = errors.New("gp: corrupt training-set size in serialized regressor")
		}
		return err
	}
	x := make([][]float64, 0, nx)
	for i := 0; i < nx && err == nil; i++ {
		x = append(x, getVec())
	}
	ys := getVec()
	alpha := getVec()
	getMat := func(what string) *linalg.Matrix {
		rows := getInt()
		if rows < 0 {
			return nil
		}
		cols := getInt()
		data := getVec()
		if err == nil && len(data) != rows*cols {
			err = fmt.Errorf("gp: corrupt %s in serialized regressor", what)
		}
		return &linalg.Matrix{Rows: rows, Cols: cols, Data: data}
	}
	chol := getMat("Cholesky factor")
	if err != nil {
		return err
	}
	if len(x) != len(ys) {
		return fmt.Errorf("gp: serialized regressor has %d inputs but %d targets", len(x), len(ys))
	}
	sparseThreshold := getInt()
	inducingPoints := getInt()
	hasSparse := getInt() != 0
	var sparse *sparseState
	if hasSparse {
		m := getInt()
		if err != nil || m < 0 || m > len(x) {
			if err == nil {
				err = errors.New("gp: corrupt inducing-set size in serialized regressor")
			}
			return err
		}
		zidx := make([]int, m)
		z := make([][]float64, m)
		for i := range zidx {
			zidx[i] = getInt()
			if err == nil && (zidx[i] < 0 || zidx[i] >= len(x)) {
				err = errors.New("gp: inducing index out of range in serialized regressor")
			}
			if err == nil {
				z[i] = x[zidx[i]]
			}
		}
		sparse = &sparseState{
			zidx:    zidx,
			z:       z,
			cholKuu: getMat("sparse K_uu factor"),
			b:       getMat("sparse B accumulator"),
			cholB:   getMat("sparse B factor"),
			alpha:   getVec(),
			sky:     getVec(),
			sk:      getVec(),
			sumY:    getF64(),
			fitN:    getInt(),
		}
	}
	if err != nil {
		return err
	}
	g.Kernel = &SEARD{Variance: variance, LengthScales: scales}
	g.Noise = noise
	g.FullRefitEvery = refitEvery
	g.SparseThreshold = sparseThreshold
	g.InducingPoints = inducingPoints
	g.addsSinceFit = adds
	g.jittered = jittered
	g.mean = mean
	if nx == 0 {
		x = nil
	}
	g.x, g.ys, g.alpha, g.chol = x, ys, alpha, chol
	g.sparse = sparse
	g.kbuf, g.vbuf = nil, nil
	return nil
}
