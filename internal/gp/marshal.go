package gp

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"autodbaas/internal/linalg"
)

// Binary state round-trip for a Regressor, shared by the checkpoint
// codec and usable standalone. The format is exact: every float64 is
// written as its IEEE-754 bit pattern, so an unmarshalled model is
// bit-for-bit the marshalled one — posterior means, variances and the
// incremental-refit bookkeeping all resume identically.
//
// Only the SE-ARD kernel is serializable (it is the only kernel the
// tuners construct); a custom Kernel implementation yields an error
// rather than a lossy snapshot.

// gpMagic identifies the serialized form; the trailing byte is the
// format version.
var gpMagic = []byte{'G', 'P', 'R', 1}

// errNotSEARD rejects kernels the codec cannot capture.
var errNotSEARD = errors.New("gp: only SE-ARD kernels are serializable")

// MarshalBinary implements encoding.BinaryMarshaler.
func (g *Regressor) MarshalBinary() ([]byte, error) {
	k, ok := g.Kernel.(*SEARD)
	if !ok {
		return nil, errNotSEARD
	}
	var b bytes.Buffer
	b.Write(gpMagic)
	putF64 := func(v float64) {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		b.Write(buf[:])
	}
	putInt := func(v int) {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(v)))
		b.Write(buf[:])
	}
	putVec := func(v []float64) {
		putInt(len(v))
		for _, f := range v {
			putF64(f)
		}
	}
	putF64(k.Variance)
	putVec(k.LengthScales)
	putF64(g.Noise)
	putInt(g.FullRefitEvery)
	putInt(g.addsSinceFit)
	if g.jittered {
		putInt(1)
	} else {
		putInt(0)
	}
	putF64(g.mean)
	putInt(len(g.x))
	for _, row := range g.x {
		putVec(row)
	}
	putVec(g.ys)
	putVec(g.alpha)
	if g.chol == nil {
		putInt(-1)
	} else {
		putInt(g.chol.Rows)
		putInt(g.chol.Cols)
		putVec(g.chol.Data)
	}
	return b.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler, replacing the
// receiver's kernel and entire fitted state.
func (g *Regressor) UnmarshalBinary(data []byte) error {
	if len(data) < len(gpMagic) || !bytes.Equal(data[:3], gpMagic[:3]) {
		return errors.New("gp: bad magic in serialized regressor")
	}
	if data[3] != gpMagic[3] {
		return fmt.Errorf("gp: serialized regressor version %d, want %d", data[3], gpMagic[3])
	}
	r := bytes.NewReader(data[len(gpMagic):])
	var err error
	getF64 := func() float64 {
		var buf [8]byte
		if _, e := r.Read(buf[:]); e != nil && err == nil {
			err = errors.New("gp: truncated serialized regressor")
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
	}
	getInt := func() int {
		var buf [8]byte
		if _, e := r.Read(buf[:]); e != nil && err == nil {
			err = errors.New("gp: truncated serialized regressor")
		}
		return int(int64(binary.LittleEndian.Uint64(buf[:])))
	}
	getVec := func() []float64 {
		n := getInt()
		if err != nil || n < 0 || n > r.Len()/8+1 {
			if err == nil {
				err = errors.New("gp: corrupt vector length in serialized regressor")
			}
			return nil
		}
		if n == 0 {
			return nil
		}
		v := make([]float64, n)
		for i := range v {
			v[i] = getF64()
		}
		return v
	}
	variance := getF64()
	scales := getVec()
	noise := getF64()
	refitEvery := getInt()
	adds := getInt()
	jittered := getInt() != 0
	mean := getF64()
	nx := getInt()
	if err != nil || nx < 0 || nx > len(data) {
		if err == nil {
			err = errors.New("gp: corrupt training-set size in serialized regressor")
		}
		return err
	}
	x := make([][]float64, 0, nx)
	for i := 0; i < nx && err == nil; i++ {
		x = append(x, getVec())
	}
	ys := getVec()
	alpha := getVec()
	cholRows := getInt()
	var chol *linalg.Matrix
	if cholRows >= 0 {
		cholCols := getInt()
		cholData := getVec()
		if err == nil && len(cholData) != cholRows*cholCols {
			err = errors.New("gp: corrupt Cholesky factor in serialized regressor")
		}
		chol = &linalg.Matrix{Rows: cholRows, Cols: cholCols, Data: cholData}
	}
	if err != nil {
		return err
	}
	if len(x) != len(ys) {
		return fmt.Errorf("gp: serialized regressor has %d inputs but %d targets", len(x), len(ys))
	}
	g.Kernel = &SEARD{Variance: variance, LengthScales: scales}
	g.Noise = noise
	g.FullRefitEvery = refitEvery
	g.addsSinceFit = adds
	g.jittered = jittered
	g.mean = mean
	if nx == 0 {
		x = nil
	}
	g.x, g.ys, g.alpha, g.chol = x, ys, alpha, chol
	g.kbuf, g.vbuf = nil, nil
	return nil
}
