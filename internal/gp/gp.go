// Package gp implements Gaussian-process regression, the surrogate model
// at the heart of the OtterTune-style BO tuner (internal/tuner/bo).
//
// The model uses a squared-exponential kernel with automatic relevance
// determination (one length scale per input dimension), a constant mean
// (the training-target mean) and i.i.d. Gaussian observation noise. The
// posterior is obtained via a Cholesky factorization of the kernel
// matrix, so Fit costs O(n³) in the number of training samples — this
// cubic cost is exactly the "recommendation cost" scalability problem
// the AutoDBaaS paper attributes to BO-style tuners, and the benchmarks
// in the repository root measure it directly.
package gp

import (
	"errors"
	"fmt"
	"math"

	"autodbaas/internal/linalg"
)

// ErrNotFitted is returned by Predict before a successful Fit.
var ErrNotFitted = errors.New("gp: model not fitted")

// ErrNoData is returned by Fit when given no training samples.
var ErrNoData = errors.New("gp: no training data")

// Kernel is a positive-definite covariance function over feature vectors.
type Kernel interface {
	// Eval returns k(a, b).
	Eval(a, b []float64) float64
}

// SEARD is the squared-exponential kernel with per-dimension length
// scales: k(a,b) = σ²·exp(−½·Σ((aᵢ−bᵢ)/ℓᵢ)²).
type SEARD struct {
	Variance     float64   // σ², signal variance
	LengthScales []float64 // ℓᵢ, one per input dimension
}

// NewSEARD returns an SE-ARD kernel with uniform length scale l over dim
// dimensions and signal variance v.
func NewSEARD(dim int, l, v float64) *SEARD {
	ls := make([]float64, dim)
	for i := range ls {
		ls[i] = l
	}
	return &SEARD{Variance: v, LengthScales: ls}
}

// Eval implements Kernel.
func (k *SEARD) Eval(a, b []float64) float64 {
	if len(a) != len(b) || len(a) != len(k.LengthScales) {
		panic(fmt.Sprintf("gp: SEARD dim mismatch a=%d b=%d ls=%d", len(a), len(b), len(k.LengthScales)))
	}
	var s float64
	for i := range a {
		d := (a[i] - b[i]) / k.LengthScales[i]
		s += d * d
	}
	return k.Variance * math.Exp(-0.5*s)
}

// Regressor is a Gaussian-process regression model.
//
// A Regressor is not safe for concurrent use: Predict reuses internal
// scratch buffers so the acquisition search (hundreds of candidate
// evaluations per recommendation) does not allocate per call.
type Regressor struct {
	Kernel Kernel
	Noise  float64 // observation noise variance added to the diagonal

	// FullRefitEvery, when positive, forces Add to run a full Fit after
	// that many consecutive incremental updates — a drift backstop so
	// accumulated rounding from long Add chains cannot survive forever.
	// Zero means incremental updates are never force-refitted (they are
	// bit-identical to a full Fit anyway; see CholeskyAppendRow). The
	// sparse path ignores it: its refresh cadence is the doubling rule
	// described in sparse.go, which keeps amortized Add cost flat in n.
	FullRefitEvery int

	// SparseThreshold, when positive, switches the model to the sparse
	// inducing-point path (see sparse.go) once the training set reaches
	// that many samples. Zero (the default) keeps the exact path
	// regardless of size — existing models stay bit-for-bit unchanged.
	SparseThreshold int
	// InducingPoints is the sparse path's inducing-set size m (default
	// 64). Only consulted when SparseThreshold is positive.
	InducingPoints int

	x     [][]float64
	ys    []float64 // stored targets (owned copy), enabling incremental refits
	mean  float64
	chol  *linalg.Matrix
	alpha []float64 // K⁻¹(y−mean)

	// jittered records that the last full Fit needed the enlarged-jitter
	// retry; the factor then includes extra diagonal mass that an
	// incremental border would not, so Add falls back to a full refit.
	jittered bool
	// addsSinceFit counts incremental updates since the last full Fit.
	addsSinceFit int

	// sparse is the inducing-point state; non-nil iff the model is on
	// the sparse path.
	sparse *sparseState

	// Predict scratch (kernel row and triangular-solve vector).
	kbuf, vbuf []float64
}

// NewRegressor returns a GP with the given kernel and noise variance.
// A non-positive noise is clamped to a small jitter for numerical safety.
func NewRegressor(k Kernel, noise float64) *Regressor {
	if noise <= 0 {
		noise = 1e-8
	}
	return &Regressor{Kernel: k, Noise: noise}
}

// Fit trains the model on inputs x and targets y. It replaces any
// previous fit. x rows are copied by reference; callers must not mutate
// them afterwards.
func (g *Regressor) Fit(x [][]float64, y []float64) error {
	if len(x) == 0 || len(y) == 0 {
		return ErrNoData
	}
	if len(x) != len(y) {
		return fmt.Errorf("gp: %d inputs but %d targets", len(x), len(y))
	}
	if g.sparseActive(len(x)) {
		return g.fitSparse(x, y)
	}
	n := len(x)
	mean := linalg.Mean(y)
	kmat := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := g.Kernel.Eval(x[i], x[j])
			kmat.Set(i, j, v)
			kmat.Set(j, i, v)
		}
	}
	if err := linalg.AddDiag(kmat, g.Noise); err != nil {
		return err
	}
	jittered := false
	chol, err := linalg.Cholesky(kmat)
	if err != nil {
		// Retry with a larger jitter; kernel matrices of near-duplicate
		// samples (common with repeated DB configs) are near-singular.
		if err2 := linalg.AddDiag(kmat, 1e-6*float64(n)); err2 != nil {
			return err2
		}
		chol, err = linalg.Cholesky(kmat)
		if err != nil {
			return err
		}
		jittered = true
	}
	resid := make([]float64, n)
	for i, yi := range y {
		resid[i] = yi - mean
	}
	alpha, err := linalg.CholSolve(chol, resid)
	if err != nil {
		return err
	}
	g.x, g.mean, g.chol, g.alpha = x, mean, chol, alpha
	g.ys = append(g.ys[:0:0], y...)
	g.jittered = jittered
	g.addsSinceFit = 0
	g.sparse = nil
	return nil
}

// Add extends the fit with one more training sample in O(n²) instead of
// the O(n³) a full refit costs: the Cholesky factor grows by one
// bordered row (linalg.CholeskyAppendRow), the constant mean is
// recomputed over the stored targets and alpha is re-solved against the
// extended factor. Because the append reproduces Cholesky's arithmetic
// exactly, the resulting model is bit-for-bit identical to calling Fit
// on the full extended training set — the property the control plane's
// determinism fingerprints rely on.
//
// Add falls back to a full Fit when the model is unfitted, when the
// last Fit needed the enlarged-jitter retry (the factor then carries
// diagonal mass a border would not reproduce), when FullRefitEvery
// consecutive updates have accumulated, or when the bordered matrix is
// numerically singular — in every case with Fit's own jitter-retry
// semantics, so the result again matches a from-scratch fit.
func (g *Regressor) Add(x []float64, y float64) error {
	if !g.Fitted() {
		return g.Fit([][]float64{x}, []float64{y})
	}
	if g.sparse != nil {
		return g.addSparse(x, y)
	}
	if g.sparseActive(len(g.x) + 1) {
		// Crossing the threshold: refitPlus routes through Fit, which
		// selects the sparse path for the extended set.
		return g.refitPlus(x, y)
	}
	if g.jittered || (g.FullRefitEvery > 0 && g.addsSinceFit >= g.FullRefitEvery) {
		return g.refitPlus(x, y)
	}
	n := len(g.x)
	k := make([]float64, n)
	for i := range g.x {
		k[i] = g.Kernel.Eval(g.x[i], x)
	}
	chol, err := linalg.CholeskyAppendRow(g.chol, k, g.Kernel.Eval(x, x)+g.Noise)
	if err != nil {
		// Near-singular border (e.g. duplicate config): full refit with
		// the jitter retry.
		return g.refitPlus(x, y)
	}
	xs := append(g.x, x)
	ys := append(g.ys, y)
	mean := linalg.Mean(ys)
	resid := make([]float64, n+1)
	for i, yi := range ys {
		resid[i] = yi - mean
	}
	alpha, err := linalg.CholSolve(chol, resid)
	if err != nil {
		return g.refitPlus(x, y)
	}
	g.x, g.ys, g.mean, g.chol, g.alpha = xs, ys, mean, chol, alpha
	g.addsSinceFit++
	return nil
}

// refitPlus runs a full Fit over the stored training set extended by
// (x, y). The stored set is copied first so a failed Fit leaves the
// current model intact.
func (g *Regressor) refitPlus(x []float64, y float64) error {
	xs := make([][]float64, len(g.x), len(g.x)+1)
	copy(xs, g.x)
	xs = append(xs, x)
	ys := append(g.ys[:0:0], g.ys...)
	ys = append(ys, y)
	return g.Fit(xs, ys)
}

// Fitted reports whether the model has been trained.
func (g *Regressor) Fitted() bool { return g.chol != nil || g.sparse != nil }

// NumSamples returns the training-set size (0 before Fit).
func (g *Regressor) NumSamples() int { return len(g.x) }

// Predict returns the posterior mean and variance at query point q.
// The kernel row k* and the triangular-solve vector live in scratch
// buffers owned by the Regressor, so the candidate-search loop of the
// BO tuner (600 Predicts per recommendation) performs no per-call
// allocations. Predict is therefore NOT safe for concurrent use.
func (g *Regressor) Predict(q []float64) (mean, variance float64, err error) {
	if !g.Fitted() {
		return 0, 0, ErrNotFitted
	}
	if g.sparse != nil {
		return g.predictSparse(q)
	}
	n := len(g.x)
	if cap(g.kbuf) < n {
		g.kbuf = make([]float64, n)
		g.vbuf = make([]float64, n)
	}
	kstar := g.kbuf[:n]
	for i := range g.x {
		kstar[i] = g.Kernel.Eval(g.x[i], q)
	}
	mean = g.mean + linalg.Dot(kstar, g.alpha)
	v := g.vbuf[:n]
	if err := linalg.SolveLowerInto(g.chol, kstar, v); err != nil {
		return 0, 0, err
	}
	variance = g.Kernel.Eval(q, q) + g.Noise - linalg.Dot(v, v)
	if variance < 0 {
		variance = 0
	}
	return mean, variance, nil
}

// LogMarginalLikelihood returns the log evidence of the fitted model,
// used for light-weight hyper-parameter selection.
func (g *Regressor) LogMarginalLikelihood(y []float64) (float64, error) {
	if !g.Fitted() {
		return 0, ErrNotFitted
	}
	if len(y) != len(g.x) {
		return 0, fmt.Errorf("gp: %d targets for %d samples", len(y), len(g.x))
	}
	if g.sparse != nil {
		return g.sparseLogMarginalLikelihood(y), nil
	}
	n := float64(len(y))
	resid := make([]float64, len(y))
	for i, yi := range y {
		resid[i] = yi - g.mean
	}
	return -0.5*linalg.Dot(resid, g.alpha) - 0.5*linalg.LogDetFromChol(g.chol) - 0.5*n*math.Log(2*math.Pi), nil
}

// UCB returns the upper-confidence-bound acquisition value mean + beta·σ.
func (g *Regressor) UCB(q []float64, beta float64) (float64, error) {
	m, v, err := g.Predict(q)
	if err != nil {
		return 0, err
	}
	return m + beta*math.Sqrt(v), nil
}

// ExpectedImprovement returns EI of q over the incumbent best value
// (maximization). Zero posterior variance yields zero improvement.
func (g *Regressor) ExpectedImprovement(q []float64, best float64) (float64, error) {
	m, v, err := g.Predict(q)
	if err != nil {
		return 0, err
	}
	sd := math.Sqrt(v)
	if sd == 0 {
		return 0, nil
	}
	z := (m - best) / sd
	return (m-best)*stdNormCDF(z) + sd*stdNormPDF(z), nil
}

func stdNormPDF(z float64) float64 { return math.Exp(-0.5*z*z) / math.Sqrt(2*math.Pi) }
func stdNormCDF(z float64) float64 { return 0.5 * math.Erfc(-z/math.Sqrt2) }

// FitWithModelSelection fits the model under several candidate length
// scales and keeps the one maximizing the log marginal likelihood — the
// light-weight hyper-parameter search a production tuner would run per
// refit. It requires the kernel to be SE-ARD (uniform scales are tried).
func (g *Regressor) FitWithModelSelection(x [][]float64, y []float64, lengthScales []float64) error {
	if len(lengthScales) == 0 {
		return errors.New("gp: empty length-scale candidates")
	}
	k, ok := g.Kernel.(*SEARD)
	if !ok {
		return errors.New("gp: model selection needs an SE-ARD kernel")
	}
	bestLML := math.Inf(-1)
	bestScale := k.LengthScales[0]
	for _, l := range lengthScales {
		if l <= 0 {
			return fmt.Errorf("gp: non-positive length scale %g", l)
		}
		for i := range k.LengthScales {
			k.LengthScales[i] = l
		}
		if err := g.Fit(x, y); err != nil {
			continue // singular under this scale; try the next
		}
		lml, err := g.LogMarginalLikelihood(y)
		if err != nil {
			continue
		}
		if lml > bestLML {
			bestLML, bestScale = lml, l
		}
	}
	if math.IsInf(bestLML, -1) {
		return errors.New("gp: no candidate length scale produced a valid fit")
	}
	for i := range k.LengthScales {
		k.LengthScales[i] = bestScale
	}
	return g.Fit(x, y)
}
