package gp

import (
	"math"

	"autodbaas/internal/linalg"
)

// Sparse inducing-point path: a deterministic-training-conditional (DTC,
// a.k.a. subset-of-regressors with the Titsias-style variance correction)
// approximation over m ≪ n inducing points. The exact path factorizes the
// full n×n kernel matrix — O(n³) fit, O(n²) predict — which caps how much
// tuning history one model can absorb; the sparse path factorizes only
// m×m systems built from running sums over the data, giving an O(nm²)
// fit, O(m²) amortized Add and O(m²) Predict, flat in n.
//
// The state the approximation needs is a set of running accumulators in
// sample order:
//
//	B    = σ²·K_uu + Σᵢ kᵢkᵢᵀ     (m×m, kᵢ = K_u(xᵢ))
//	sky  = Σᵢ kᵢ·yᵢ               (m-vector)
//	sk   = Σᵢ kᵢ                  (m-vector)
//	sumY = Σᵢ yᵢ
//
// from which mean* (q) = ȳ + k_quᵀ·B⁻¹·(sky − ȳ·sk) and the DTC
// variance is k(q,q) + σ² − k_quᵀK_uu⁻¹k_qu + σ²·k_quᵀB⁻¹k_qu. Because
// Add extends the very same accumulators by one term — in the same
// sample order a from-scratch accumulation would use — an incremental
// update is bit-for-bit identical to rebuilding the sums over the full
// training set with the same inducing set, the analogue of the exact
// path's CholeskyAppendRow determinism contract.
//
// The inducing set is chosen by greedy farthest-point selection (ties to
// the lowest index — fully deterministic) and refreshed on a doubling
// cadence: whenever the training set has doubled since the set was last
// chosen, Fit runs again over everything and reselects. Doubling keeps
// the amortized per-Add cost at O(m²) regardless of n; any fixed
// refresh period would reintroduce an O(n) term.

// defaultInducingPoints is the inducing-set size when SparseThreshold is
// set but InducingPoints is not.
const defaultInducingPoints = 64

// sparseJitter stabilizes the K_uu factorization; inducing points are
// farthest-point spread so near-duplicates are rare, but duplicate
// configs in small training sets can still collide.
const sparseJitter = 1e-8

// sparseState is the fitted sparse model. The inducing inputs are
// referenced by index into the Regressor's stored training set, so the
// serialized form only carries indices.
type sparseState struct {
	zidx    []int          // indices of inducing points into g.x
	z       [][]float64    // g.x rows at zidx (aliases, not copies)
	cholKuu *linalg.Matrix // chol(K_uu + jitter·I), m×m
	b       *linalg.Matrix // running B = σ²·K_uu + Σ kᵢkᵢᵀ
	cholB   *linalg.Matrix // chol(B), rebuilt after every update
	alpha   []float64      // B⁻¹·(sky − mean·sk)
	sky     []float64      // Σ kᵢyᵢ, sample order
	sk      []float64      // Σ kᵢ, sample order
	sumY    float64        // Σ yᵢ, sample order
	// fitN is the training-set size when the inducing set was last
	// (re)selected; Add refreshes once len(x) ≥ 2·fitN.
	fitN int
}

// Sparse reports whether the model is currently on the sparse
// inducing-point path (false before Fit or while exact).
func (g *Regressor) Sparse() bool { return g.sparse != nil }

// InducingSetSize returns the current inducing-set size (0 when exact).
func (g *Regressor) InducingSetSize() int {
	if g.sparse == nil {
		return 0
	}
	return len(g.sparse.zidx)
}

// sparseActive reports whether a training set of size n should use the
// sparse path under the configured threshold.
func (g *Regressor) sparseActive(n int) bool {
	return g.SparseThreshold > 0 && n >= g.SparseThreshold
}

// inducingCount returns m for a training set of size n.
func (g *Regressor) inducingCount(n int) int {
	m := g.InducingPoints
	if m <= 0 {
		m = defaultInducingPoints
	}
	if m > n {
		m = n
	}
	return m
}

// selectInducing picks m spread-out training points by greedy
// farthest-point traversal: start from index 0, then repeatedly take the
// point whose squared distance to the chosen set is largest, breaking
// ties toward the lowest index. Deterministic in the sample order.
func selectInducing(x [][]float64, m int) []int {
	n := len(x)
	idx := make([]int, 0, m)
	idx = append(idx, 0)
	// minDist[i] tracks the squared distance from x[i] to the nearest
	// chosen inducing point so each round is O(n·dim).
	minDist := make([]float64, n)
	for i := range minDist {
		minDist[i] = sqDist(x[i], x[0])
	}
	for len(idx) < m {
		best, bestD := -1, -1.0
		for i := 0; i < n; i++ {
			if minDist[i] > bestD {
				best, bestD = i, minDist[i]
			}
		}
		idx = append(idx, best)
		for i := 0; i < n; i++ {
			if d := sqDist(x[i], x[best]); d < minDist[i] {
				minDist[i] = d
			}
		}
	}
	return idx
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// fitSparse trains the sparse model from scratch on x, y: select the
// inducing set, factorize K_uu, then accumulate B/sky/sk/sumY over the
// samples in order. Cost O(nm² + nm·d). On success it replaces both the
// sparse and exact state (the exact factor is dropped; the raw training
// set is kept for refreshes and for falling back to exact marshalling).
func (g *Regressor) fitSparse(x [][]float64, y []float64) error {
	n := len(x)
	m := g.inducingCount(n)
	zidx := selectInducing(x, m)
	z := make([][]float64, m)
	for i, id := range zidx {
		z[i] = x[id]
	}
	kuu := linalg.NewMatrix(m, m)
	for i := 0; i < m; i++ {
		for j := i; j < m; j++ {
			v := g.Kernel.Eval(z[i], z[j])
			kuu.Set(i, j, v)
			kuu.Set(j, i, v)
		}
	}
	if err := linalg.AddDiag(kuu, sparseJitter); err != nil {
		return err
	}
	cholKuu, err := linalg.Cholesky(kuu)
	if err != nil {
		// Duplicate inducing inputs: retry with the same enlarged jitter
		// the exact path uses.
		if err2 := linalg.AddDiag(kuu, 1e-6*float64(m)); err2 != nil {
			return err2
		}
		if cholKuu, err = linalg.Cholesky(kuu); err != nil {
			return err
		}
	}
	// B starts at σ²·K_uu (the jittered copy, keeping B safely PD) and
	// absorbs one kᵢkᵢᵀ per sample in order.
	b := kuu.Clone()
	for i := range b.Data {
		b.Data[i] *= g.Noise
	}
	sky := make([]float64, m)
	sk := make([]float64, m)
	sumY := 0.0
	k := make([]float64, m)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			k[j] = g.Kernel.Eval(z[j], x[i])
		}
		accumulateSample(b, sky, sk, k, y[i])
		sumY += y[i]
	}
	st := &sparseState{
		zidx: zidx, z: z,
		cholKuu: cholKuu, b: b,
		sky: sky, sk: sk, sumY: sumY,
		fitN: n,
	}
	mean := sumY / float64(n)
	if err := st.refreshPosterior(mean); err != nil {
		return err
	}
	g.x = x
	g.ys = append(g.ys[:0:0], y...)
	g.mean = mean
	g.chol, g.alpha = nil, nil
	g.jittered = false
	g.addsSinceFit = 0
	g.sparse = st
	return nil
}

// addSparse extends the running accumulators by one sample and rebuilds
// the m×m posterior — O(m² ·d + m³) with m fixed, so flat in n. The
// resulting state is bit-identical to re-accumulating the full extended
// training set against the same inducing set. When the training set has
// doubled since the inducing set was chosen, the set is refreshed with a
// full fitSparse instead.
func (g *Regressor) addSparse(x []float64, y float64) error {
	st := g.sparse
	if len(g.x)+1 >= 2*st.fitN {
		xs := make([][]float64, len(g.x), len(g.x)+1)
		copy(xs, g.x)
		xs = append(xs, x)
		ys := append(g.ys[:0:0], g.ys...)
		ys = append(ys, y)
		return g.fitSparse(xs, ys)
	}
	m := len(st.zidx)
	k := make([]float64, m)
	for j := 0; j < m; j++ {
		k[j] = g.Kernel.Eval(st.z[j], x)
	}
	accumulateSample(st.b, st.sky, st.sk, k, y)
	st.sumY += y
	g.x = append(g.x, x)
	g.ys = append(g.ys, y)
	g.mean = st.sumY / float64(len(g.x))
	if err := st.refreshPosterior(g.mean); err != nil {
		// Roll the accumulators back is not possible cheaply; refit from
		// scratch instead so a numerical failure cannot wedge the model.
		xs := g.x
		ys := append(g.ys[:0:0], g.ys...)
		return g.fitSparse(xs, ys)
	}
	g.addsSinceFit++
	return nil
}

// accumulateSample folds one sample's kernel column into the running
// sums: B += k·kᵀ, sky += y·k, sk += k.
func accumulateSample(b *linalg.Matrix, sky, sk, k []float64, y float64) {
	m := len(k)
	for i := 0; i < m; i++ {
		ki := k[i]
		row := b.Data[i*m : (i+1)*m]
		for j := 0; j < m; j++ {
			row[j] += ki * k[j]
		}
		sky[i] += y * ki
		sk[i] += ki
	}
}

// refreshPosterior refactorizes B and re-solves alpha against the
// current accumulators and mean.
func (st *sparseState) refreshPosterior(mean float64) error {
	cholB, err := linalg.Cholesky(st.b)
	if err != nil {
		return err
	}
	m := len(st.sky)
	c := make([]float64, m)
	for i := 0; i < m; i++ {
		c[i] = st.sky[i] - mean*st.sk[i]
	}
	alpha, err := linalg.CholSolve(cholB, c)
	if err != nil {
		return err
	}
	st.cholB, st.alpha = cholB, alpha
	return nil
}

// predictSparse returns the DTC posterior at q in O(m²), independent of
// the stored history size. Scratch buffers are shared with the exact
// path, so the no-allocation property of the candidate-search loop
// holds here too.
func (g *Regressor) predictSparse(q []float64) (mean, variance float64, err error) {
	st := g.sparse
	m := len(st.zidx)
	if cap(g.kbuf) < m {
		g.kbuf = make([]float64, m)
		g.vbuf = make([]float64, m)
	}
	kq := g.kbuf[:m]
	for j := 0; j < m; j++ {
		kq[j] = g.Kernel.Eval(st.z[j], q)
	}
	mean = g.mean + linalg.Dot(kq, st.alpha)
	v := g.vbuf[:m]
	if err := linalg.SolveLowerInto(st.cholKuu, kq, v); err != nil {
		return 0, 0, err
	}
	prior := linalg.Dot(v, v) // k_quᵀ·K_uu⁻¹·k_qu
	if err := linalg.SolveLowerInto(st.cholB, kq, v); err != nil {
		return 0, 0, err
	}
	post := linalg.Dot(v, v) // k_quᵀ·B⁻¹·k_qu
	variance = g.Kernel.Eval(q, q) + g.Noise - prior + g.Noise*post
	if variance < 0 {
		variance = 0
	}
	return mean, variance, nil
}

// sparseLogMarginalLikelihood is the DTC evidence — used only by model
// selection, which the tuners run on the exact path; provided for
// completeness so LogMarginalLikelihood keeps working above threshold.
func (g *Regressor) sparseLogMarginalLikelihood(y []float64) float64 {
	// Evidence of the projected process: y ~ N(ȳ·1, Q + σ²I) with
	// Q = K_fu·K_uu⁻¹·K_uf. Using the matrix determinant lemma and the
	// Woodbury identity everything reduces to the m×m factors we hold:
	//	log|Q+σ²I| = log|B| − log|K_uu| + (n−m)·log σ²
	//	residᵀ(Q+σ²I)⁻¹resid = (residᵀresid − cᵀB⁻¹c)/σ²
	// with c = Σ kᵢ·residᵢ = sky − ȳ·sk.
	st := g.sparse
	n := float64(len(y))
	var rss float64
	for _, yi := range y {
		r := yi - g.mean
		rss += r * r
	}
	m := len(st.sky)
	c := make([]float64, m)
	for i := 0; i < m; i++ {
		c[i] = st.sky[i] - g.mean*st.sk[i]
	}
	quad := (rss - linalg.Dot(c, st.alpha)) / g.Noise
	logdet := linalg.LogDetFromChol(st.cholB) - linalg.LogDetFromChol(st.cholKuu) + (n-float64(m))*math.Log(g.Noise)
	return -0.5*quad - 0.5*logdet - 0.5*n*math.Log(2*math.Pi)
}
