package gp

import (
	"math"
	"math/rand"
	"testing"

	"autodbaas/internal/linalg"
)

// genSamples draws n smooth-function samples in dim dimensions.
func genSamples(seed int64, n, dim int) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		row := make([]float64, dim)
		for j := range row {
			row[j] = rng.Float64()
		}
		x[i] = row
		y[i] = math.Sin(3*row[0]) + row[1]*row[dim-1] + 0.05*rng.NormFloat64()
	}
	return x, y
}

// newSparseRegressor returns a model configured to go sparse at
// threshold with m inducing points.
func newSparseRegressor(dim, threshold, m int) *Regressor {
	g := NewRegressor(NewSEARD(dim, 0.6, 1.0), 1e-4)
	g.SparseThreshold = threshold
	g.InducingPoints = m
	return g
}

// TestSparsePathEngagesAtThreshold pins the path-selection rule: below
// the threshold the model is the exact one (chol set, sparse nil), at
// or above it the inducing-point state takes over, and refitting small
// drops back to exact.
func TestSparsePathEngagesAtThreshold(t *testing.T) {
	x, y := genSamples(1, 80, 3)
	g := newSparseRegressor(3, 60, 16)
	if err := g.Fit(x[:59], y[:59]); err != nil {
		t.Fatal(err)
	}
	if g.Sparse() || g.chol == nil {
		t.Fatal("below threshold the model must stay exact")
	}
	if err := g.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if !g.Sparse() || g.chol != nil {
		t.Fatal("at threshold the model must switch to the sparse path")
	}
	if got := g.InducingSetSize(); got != 16 {
		t.Fatalf("inducing set size = %d, want 16", got)
	}
	if !g.Fitted() || g.NumSamples() != 80 {
		t.Fatalf("sparse model: Fitted=%v NumSamples=%d", g.Fitted(), g.NumSamples())
	}
	if _, _, err := g.Predict(x[5]); err != nil {
		t.Fatal(err)
	}
	if err := g.Fit(x[:10], y[:10]); err != nil {
		t.Fatal(err)
	}
	if g.Sparse() {
		t.Fatal("refit below threshold must return to the exact path")
	}
}

// TestSparseAddCrossesThresholdFromExact drives an exact model over the
// threshold via Add and checks the switch happens exactly at the
// boundary.
func TestSparseAddCrossesThresholdFromExact(t *testing.T) {
	x, y := genSamples(2, 70, 3)
	g := newSparseRegressor(3, 64, 12)
	if err := g.Fit(x[:50], y[:50]); err != nil {
		t.Fatal(err)
	}
	for i := 50; i < 70; i++ {
		if err := g.Add(x[i], y[i]); err != nil {
			t.Fatal(err)
		}
		wantSparse := i+1 >= 64
		if g.Sparse() != wantSparse {
			t.Fatalf("after %d samples Sparse()=%v, want %v", i+1, g.Sparse(), wantSparse)
		}
	}
}

// TestSparseAddMatchesBatchAccumulation is the sparse analogue of the
// exact path's Add ≡ Fit bitwise contract: extending the accumulators
// one sample at a time must leave B, sky, sk and sumY bit-for-bit
// identical to accumulating the full training set in one pass against
// the same inducing set.
func TestSparseAddMatchesBatchAccumulation(t *testing.T) {
	x, y := genSamples(3, 100, 4)
	g := newSparseRegressor(4, 60, 16)
	if err := g.Fit(x[:70], y[:70]); err != nil {
		t.Fatal(err)
	}
	for i := 70; i < 100; i++ { // 100 < 2·70, so no refresh fires
		if err := g.Add(x[i], y[i]); err != nil {
			t.Fatal(err)
		}
	}
	st := g.sparse
	if st.fitN != 70 {
		t.Fatalf("inducing set refreshed unexpectedly: fitN=%d", st.fitN)
	}

	// Rebuild the accumulators from scratch over all 100 samples with
	// the same inducing set.
	m := len(st.zidx)
	kuu := linalg.NewMatrix(m, m)
	for i := 0; i < m; i++ {
		for j := i; j < m; j++ {
			v := g.Kernel.Eval(st.z[i], st.z[j])
			kuu.Set(i, j, v)
			kuu.Set(j, i, v)
		}
	}
	if err := linalg.AddDiag(kuu, sparseJitter); err != nil {
		t.Fatal(err)
	}
	b := kuu.Clone()
	for i := range b.Data {
		b.Data[i] *= g.Noise
	}
	sky := make([]float64, m)
	sk := make([]float64, m)
	sumY := 0.0
	k := make([]float64, m)
	for i := 0; i < 100; i++ {
		for j := 0; j < m; j++ {
			k[j] = g.Kernel.Eval(st.z[j], x[i])
		}
		accumulateSample(b, sky, sk, k, y[i])
		sumY += y[i]
	}
	if math.Float64bits(sumY) != math.Float64bits(st.sumY) {
		t.Fatalf("sumY: %x != %x", math.Float64bits(sumY), math.Float64bits(st.sumY))
	}
	for i := range b.Data {
		if math.Float64bits(b.Data[i]) != math.Float64bits(st.b.Data[i]) {
			t.Fatalf("B[%d]: %x != %x", i, math.Float64bits(b.Data[i]), math.Float64bits(st.b.Data[i]))
		}
	}
	for i := range sky {
		if math.Float64bits(sky[i]) != math.Float64bits(st.sky[i]) {
			t.Fatalf("sky[%d] mismatch", i)
		}
		if math.Float64bits(sk[i]) != math.Float64bits(st.sk[i]) {
			t.Fatalf("sk[%d] mismatch", i)
		}
	}
}

// TestSparseRefreshDoubling pins the refresh cadence: the inducing set
// is reselected once the training set has doubled since the last
// selection, and not before.
func TestSparseRefreshDoubling(t *testing.T) {
	x, y := genSamples(4, 130, 3)
	g := newSparseRegressor(3, 60, 8)
	if err := g.Fit(x[:60], y[:60]); err != nil {
		t.Fatal(err)
	}
	if g.sparse.fitN != 60 {
		t.Fatalf("fitN=%d after fit", g.sparse.fitN)
	}
	for i := 60; i < 119; i++ {
		if err := g.Add(x[i], y[i]); err != nil {
			t.Fatal(err)
		}
		if g.sparse.fitN != 60 {
			t.Fatalf("refresh fired early at n=%d", i+1)
		}
	}
	// The 120th sample doubles the set: refresh.
	if err := g.Add(x[119], y[119]); err != nil {
		t.Fatal(err)
	}
	if g.sparse.fitN != 120 {
		t.Fatalf("refresh did not fire at the doubling point: fitN=%d", g.sparse.fitN)
	}
	if g.addsSinceFit != 0 {
		t.Fatalf("addsSinceFit=%d after refresh", g.addsSinceFit)
	}
}

// TestSparsePredictTracksExact checks approximation quality: on a
// smooth target with a healthy inducing budget, sparse predictions stay
// close to the exact GP's on held-out query points and the variance is
// non-negative and finite.
func TestSparsePredictTracksExact(t *testing.T) {
	x, y := genSamples(5, 200, 3)
	exact := NewRegressor(NewSEARD(3, 0.6, 1.0), 1e-4)
	if err := exact.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	sparse := newSparseRegressor(3, 100, 48)
	if err := sparse.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	qs, _ := genSamples(6, 50, 3)
	var worst float64
	for _, q := range qs {
		me, _, err := exact.Predict(q)
		if err != nil {
			t.Fatal(err)
		}
		ms, vs, err := sparse.Predict(q)
		if err != nil {
			t.Fatal(err)
		}
		if vs < 0 || math.IsNaN(ms) || math.IsNaN(vs) || math.IsInf(ms, 0) || math.IsInf(vs, 0) {
			t.Fatalf("degenerate sparse posterior at %v: mean=%v var=%v", q, ms, vs)
		}
		if d := math.Abs(me - ms); d > worst {
			worst = d
		}
	}
	if worst > 0.25 {
		t.Fatalf("sparse posterior mean drifts %.3f from exact (want ≤ 0.25)", worst)
	}
}

// TestSparseCheckpointRoundTrip is the checkpoint contract for the
// sparse path: the inducing set, both factors, the running accumulators
// and the refresh counters all survive a marshal/unmarshal cycle
// Float64bits-exact, and the restored model keeps agreeing bitwise with
// the original through further Adds — including across an inducing-set
// refresh.
func TestSparseCheckpointRoundTrip(t *testing.T) {
	x, y := genSamples(7, 90, 4)
	g := newSparseRegressor(4, 60, 16)
	if err := g.Fit(x[:64], y[:64]); err != nil {
		t.Fatal(err)
	}
	for i := 64; i < 80; i++ {
		if err := g.Add(x[i], y[i]); err != nil {
			t.Fatal(err)
		}
	}
	blob, err := g.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var h Regressor
	if err := h.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if !h.Sparse() {
		t.Fatal("sparse state lost in round trip")
	}
	if h.SparseThreshold != g.SparseThreshold || h.InducingPoints != g.InducingPoints {
		t.Fatalf("sparse config lost: %d/%d vs %d/%d", h.SparseThreshold, h.InducingPoints, g.SparseThreshold, g.InducingPoints)
	}
	a, b := g.sparse, h.sparse
	if a.fitN != b.fitN || len(a.zidx) != len(b.zidx) {
		t.Fatalf("counters: fitN %d/%d, m %d/%d", a.fitN, b.fitN, len(a.zidx), len(b.zidx))
	}
	for i := range a.zidx {
		if a.zidx[i] != b.zidx[i] {
			t.Fatalf("zidx[%d]: %d != %d", i, a.zidx[i], b.zidx[i])
		}
	}
	if math.Float64bits(a.sumY) != math.Float64bits(b.sumY) {
		t.Fatal("sumY mismatch")
	}
	eqVec := func(name string, u, v []float64) {
		t.Helper()
		if len(u) != len(v) {
			t.Fatalf("%s: len %d != %d", name, len(u), len(v))
		}
		for i := range u {
			if math.Float64bits(u[i]) != math.Float64bits(v[i]) {
				t.Fatalf("%s[%d]: %x != %x", name, i, math.Float64bits(u[i]), math.Float64bits(v[i]))
			}
		}
	}
	eqVec("cholKuu", a.cholKuu.Data, b.cholKuu.Data)
	eqVec("B", a.b.Data, b.b.Data)
	eqVec("cholB", a.cholB.Data, b.cholB.Data)
	eqVec("alpha", a.alpha, b.alpha)
	eqVec("sky", a.sky, b.sky)
	eqVec("sk", a.sk, b.sk)

	// Behavioral equality through further Adds, across the refresh at
	// n=128 (2·64).
	for i := 80; i < 90; i++ {
		if err := g.Add(x[i], y[i]); err != nil {
			t.Fatal(err)
		}
		if err := h.Add(x[i], y[i]); err != nil {
			t.Fatal(err)
		}
	}
	extra, ey := genSamples(8, 50, 4)
	for i := range extra {
		if err := g.Add(extra[i], ey[i]); err != nil {
			t.Fatal(err)
		}
		if err := h.Add(extra[i], ey[i]); err != nil {
			t.Fatal(err)
		}
	}
	if g.sparse.fitN != 128 || h.sparse.fitN != 128 {
		t.Fatalf("expected both models refreshed at 128: %d vs %d", g.sparse.fitN, h.sparse.fitN)
	}
	q := extra[0]
	m1, v1, err1 := g.Predict(q)
	m2, v2, err2 := h.Predict(q)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if math.Float64bits(m1) != math.Float64bits(m2) || math.Float64bits(v1) != math.Float64bits(v2) {
		t.Fatalf("post-restore prediction diverged: (%v,%v) vs (%v,%v)", m1, v1, m2, v2)
	}
}

// TestSparseVersionSkewRejected pins the version gate: a version-1 blob
// (the pre-sparse format) must be rejected, not silently read with the
// sparse section missing.
func TestSparseVersionSkewRejected(t *testing.T) {
	g := fitDemoModel(t, 10)
	blob, err := g.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	v1 := append([]byte(nil), blob...)
	v1[3] = 1
	var h Regressor
	if err := h.UnmarshalBinary(v1); err == nil {
		t.Fatal("version-1 blob unmarshalled without error")
	}
}

// TestSparsePredictScratchNoAllocs mirrors the exact path's
// no-allocation contract for the candidate-search loop.
func TestSparsePredictScratchNoAllocs(t *testing.T) {
	x, y := genSamples(9, 120, 3)
	g := newSparseRegressor(3, 100, 32)
	if err := g.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	q := []float64{0.4, 0.5, 0.6}
	if _, _, err := g.Predict(q); err != nil { // warm the buffers
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, _, err := g.Predict(q); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("sparse Predict allocates %.1f per call, want 0", allocs)
	}
}

// TestSparseCrossThresholdAfterRestore is the kill/restore contract at
// the exact→sparse boundary: a model checkpointed while still exact
// (below SparseThreshold), restored into a fresh Regressor and then
// driven past the threshold with Add must cross to the sparse path at
// the same sample, serialize bit-for-bit identically to the
// uninterrupted model, and agree with it to the last bit on every
// prediction.
func TestSparseCrossThresholdAfterRestore(t *testing.T) {
	x, y := genSamples(11, 90, 3)
	const threshold = 64

	build := func() *Regressor {
		g := newSparseRegressor(3, threshold, 12)
		if err := g.Fit(x[:50], y[:50]); err != nil {
			t.Fatal(err)
		}
		return g
	}

	// Uninterrupted reference: straight through the threshold.
	ref := build()
	for i := 50; i < 90; i++ {
		if err := ref.Add(x[i], y[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !ref.Sparse() {
		t.Fatal("reference never went sparse — threshold not exercised")
	}

	// Interrupted twin: checkpoint while exact, restore, then continue.
	g := build()
	if g.Sparse() {
		t.Fatal("model went sparse before the checkpoint — the test needs an exact snapshot")
	}
	blob, err := g.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var h Regressor
	if err := h.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	for i := 50; i < 90; i++ {
		if err := h.Add(x[i], y[i]); err != nil {
			t.Fatal(err)
		}
		if h.Sparse() != (i+1 >= threshold) {
			t.Fatalf("restored model: after %d samples Sparse()=%v", i+1, h.Sparse())
		}
	}

	refBlob, err := ref.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	gotBlob, err := h.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(refBlob) != len(gotBlob) {
		t.Fatalf("serialized sizes diverged: %d vs %d", len(refBlob), len(gotBlob))
	}
	for i := range refBlob {
		if refBlob[i] != gotBlob[i] {
			t.Fatalf("serialized state diverged at byte %d", i)
		}
	}
	for i := 0; i < 90; i += 7 {
		m1, v1, err := ref.Predict(x[i])
		if err != nil {
			t.Fatal(err)
		}
		m2, v2, err := h.Predict(x[i])
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(m1) != math.Float64bits(m2) || math.Float64bits(v1) != math.Float64bits(v2) {
			t.Fatalf("prediction %d diverged: (%v,%v) vs (%v,%v)", i, m1, v1, m2, v2)
		}
	}
}
