package gp

import (
	"math"
	"math/rand"
	"testing"
)

func synthPoint(rng *rand.Rand, dim int) ([]float64, float64) {
	x := make([]float64, dim)
	var y float64
	for d := range x {
		x[d] = rng.Float64()
		y += math.Sin(3*x[d]) * float64(d+1)
	}
	return x, y + 0.01*rng.NormFloat64()
}

// TestAddMatchesFullFitBitwise is the incremental-refit guarantee: a
// model grown sample-by-sample with Add predicts bit-identically to a
// model fitted from scratch on the same data. Exact float64 equality,
// across several sizes and dimensions.
func TestAddMatchesFullFitBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, tc := range []struct{ n, dim int }{{5, 2}, {24, 4}, {60, 10}} {
		xs := make([][]float64, tc.n)
		ys := make([]float64, tc.n)
		for i := range xs {
			xs[i], ys[i] = synthPoint(rng, tc.dim)
		}
		inc := NewRegressor(NewSEARD(tc.dim, 0.35, 1.0), 1e-3)
		for i := range xs {
			if err := inc.Add(xs[i], ys[i]); err != nil {
				t.Fatalf("n=%d dim=%d: Add %d: %v", tc.n, tc.dim, i, err)
			}
		}
		full := NewRegressor(NewSEARD(tc.dim, 0.35, 1.0), 1e-3)
		if err := full.Fit(xs, ys); err != nil {
			t.Fatalf("n=%d dim=%d: full Fit: %v", tc.n, tc.dim, err)
		}
		if inc.NumSamples() != full.NumSamples() {
			t.Fatalf("sample counts differ: %d vs %d", inc.NumSamples(), full.NumSamples())
		}
		for trial := 0; trial < 50; trial++ {
			q := make([]float64, tc.dim)
			for d := range q {
				q[d] = rng.Float64()*1.4 - 0.2
			}
			m1, v1, err1 := inc.Predict(q)
			m2, v2, err2 := full.Predict(q)
			if err1 != nil || err2 != nil {
				t.Fatalf("predict errs: %v %v", err1, err2)
			}
			if math.Float64bits(m1) != math.Float64bits(m2) || math.Float64bits(v1) != math.Float64bits(v2) {
				t.Fatalf("n=%d dim=%d q#%d: incremental (%g, %g) != full (%g, %g)",
					tc.n, tc.dim, trial, m1, v1, m2, v2)
			}
		}
	}
}

// TestAddAfterFitMatchesRefit: the BO tuner's actual pattern — Fit on a
// prefix, Add the tail — must equal one Fit over everything.
func TestAddAfterFitMatchesRefit(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const n, dim, tail = 40, 6, 7
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i], ys[i] = synthPoint(rng, dim)
	}
	inc := NewRegressor(NewSEARD(dim, 0.35, 1.0), 1e-3)
	if err := inc.Fit(xs[:n-tail], ys[:n-tail]); err != nil {
		t.Fatal(err)
	}
	for i := n - tail; i < n; i++ {
		if err := inc.Add(xs[i], ys[i]); err != nil {
			t.Fatalf("Add %d: %v", i, err)
		}
	}
	full := NewRegressor(NewSEARD(dim, 0.35, 1.0), 1e-3)
	if err := full.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	q := make([]float64, dim)
	for trial := 0; trial < 50; trial++ {
		for d := range q {
			q[d] = rng.Float64()
		}
		m1, v1, _ := inc.Predict(q)
		m2, v2, _ := full.Predict(q)
		if math.Float64bits(m1) != math.Float64bits(m2) || math.Float64bits(v1) != math.Float64bits(v2) {
			t.Fatalf("q#%d: incremental (%g, %g) != full (%g, %g)", trial, m1, v1, m2, v2)
		}
	}
}

// TestAddHandlesDuplicateSample: appending an exact duplicate config
// makes the bordered matrix singular; Add must fall back to the full
// jittered refit and keep predicting sanely.
func TestAddHandlesDuplicateSample(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const dim = 3
	g := NewRegressor(NewSEARD(dim, 0.35, 1.0), 1e-3)
	g.Noise = 0 // zero noise: duplicate rows make the bordered matrix exactly singular
	x0, y0 := synthPoint(rng, dim)
	if err := g.Add(x0, y0); err != nil {
		t.Fatal(err)
	}
	dup := append([]float64(nil), x0...)
	if err := g.Add(dup, y0); err != nil {
		t.Fatalf("duplicate Add should fall back to jittered refit, got %v", err)
	}
	if g.NumSamples() != 2 {
		t.Fatalf("NumSamples = %d, want 2", g.NumSamples())
	}
	if _, _, err := g.Predict(x0); err != nil {
		t.Fatalf("Predict after fallback: %v", err)
	}
	// The fallback took the jitter path; subsequent Adds must keep
	// refitting fully (the factor carries jitter a border cannot match).
	if !g.jittered {
		t.Fatal("expected jittered flag after duplicate fallback")
	}
	x1, y1 := synthPoint(rng, dim)
	if err := g.Add(x1, y1); err != nil {
		t.Fatalf("Add after jittered fit: %v", err)
	}
	if g.NumSamples() != 3 {
		t.Fatalf("NumSamples = %d, want 3", g.NumSamples())
	}
}

// TestFullRefitBackstop pins the drift backstop counter.
func TestFullRefitBackstop(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := NewRegressor(NewSEARD(2, 0.35, 1.0), 1e-3)
	g.FullRefitEvery = 4
	for i := 0; i < 10; i++ {
		x, y := synthPoint(rng, 2)
		if err := g.Add(x, y); err != nil {
			t.Fatalf("Add %d: %v", i, err)
		}
		if g.addsSinceFit > g.FullRefitEvery {
			t.Fatalf("addsSinceFit %d exceeded backstop %d", g.addsSinceFit, g.FullRefitEvery)
		}
	}
	full := NewRegressor(NewSEARD(2, 0.35, 1.0), 1e-3)
	if err := full.Fit(g.x, g.ys); err != nil {
		t.Fatal(err)
	}
	q := []float64{0.3, 0.7}
	m1, v1, _ := g.Predict(q)
	m2, v2, _ := full.Predict(q)
	if math.Float64bits(m1) != math.Float64bits(m2) || math.Float64bits(v1) != math.Float64bits(v2) {
		t.Fatalf("backstopped model diverged: (%g, %g) vs (%g, %g)", m1, v1, m2, v2)
	}
}

// TestPredictScratchNoAllocs gates the zero-alloc acquisition loop.
func TestPredictScratchNoAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	const n, dim = 50, 8
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i], ys[i] = synthPoint(rng, dim)
	}
	g := NewRegressor(NewSEARD(dim, 0.35, 1.0), 1e-3)
	if err := g.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	q := make([]float64, dim)
	for d := range q {
		q[d] = rng.Float64()
	}
	g.Predict(q) // warm scratch
	allocs := testing.AllocsPerRun(100, func() {
		if _, _, err := g.Predict(q); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("Predict allocates %.1f objects/op, want 0", allocs)
	}
}
