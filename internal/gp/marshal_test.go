package gp

import (
	"math"
	"math/rand"
	"testing"
)

// fitDemoModel trains a model through the same mixed Fit/Add path the
// BO tuner uses, so the round-trip covers incremental bookkeeping
// (addsSinceFit, jitter flag) as well as the factor itself.
func fitDemoModel(t *testing.T, n int) *Regressor {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	g := NewRegressor(NewSEARD(4, 0.8, 1.2), 1e-5)
	g.FullRefitEvery = 64
	x := make([][]float64, 0, n)
	y := make([]float64, 0, n)
	for i := 0; i < n/2; i++ {
		row := []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
		x = append(x, row)
		y = append(y, math.Sin(3*row[0])+row[1]*row[2]+0.1*rng.NormFloat64())
	}
	if err := g.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	for i := n / 2; i < n; i++ {
		row := []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
		if err := g.Add(row, math.Sin(3*row[0])+row[1]*row[2]); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// TestRegressorBinaryRoundTrip is the checkpoint contract for the GP:
// marshalled and unmarshalled models agree to the last bit — training
// set, targets, Cholesky factor, alpha, kernel hyper-parameters and the
// incremental-refit counters — and keep agreeing through further Adds.
func TestRegressorBinaryRoundTrip(t *testing.T) {
	g := fitDemoModel(t, 40)
	blob, err := g.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var h Regressor
	if err := h.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}

	// Bitwise state equality.
	if h.mean != g.mean || math.Float64bits(h.mean) != math.Float64bits(g.mean) {
		t.Fatalf("mean: %x != %x", math.Float64bits(h.mean), math.Float64bits(g.mean))
	}
	if h.addsSinceFit != g.addsSinceFit || h.jittered != g.jittered ||
		h.FullRefitEvery != g.FullRefitEvery || h.Noise != g.Noise {
		t.Fatalf("bookkeeping mismatch: %+v vs %+v", h, g)
	}
	eqVec := func(name string, a, b []float64) {
		t.Helper()
		if len(a) != len(b) {
			t.Fatalf("%s: len %d != %d", name, len(a), len(b))
		}
		for i := range a {
			if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
				t.Fatalf("%s[%d]: %x != %x", name, i, math.Float64bits(a[i]), math.Float64bits(b[i]))
			}
		}
	}
	eqVec("ys", h.ys, g.ys)
	eqVec("alpha", h.alpha, g.alpha)
	eqVec("chol", h.chol.Data, g.chol.Data)
	for i := range g.x {
		eqVec("x", h.x[i], g.x[i])
	}
	hk, gk := h.Kernel.(*SEARD), g.Kernel.(*SEARD)
	if hk.Variance != gk.Variance {
		t.Fatalf("kernel variance %v != %v", hk.Variance, gk.Variance)
	}
	eqVec("lengthscales", hk.LengthScales, gk.LengthScales)

	// Behavioral equality: predictions and subsequent Adds bitwise agree.
	q := []float64{0.3, 0.7, 0.1, 0.9}
	m1, v1, err1 := g.Predict(q)
	m2, v2, err2 := h.Predict(q)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if math.Float64bits(m1) != math.Float64bits(m2) || math.Float64bits(v1) != math.Float64bits(v2) {
		t.Fatalf("prediction diverged: (%v,%v) vs (%v,%v)", m1, v1, m2, v2)
	}
	if err := g.Add(q, 1.5); err != nil {
		t.Fatal(err)
	}
	if err := h.Add(q, 1.5); err != nil {
		t.Fatal(err)
	}
	m1, v1, _ = g.Predict([]float64{0.5, 0.5, 0.5, 0.5})
	m2, v2, _ = h.Predict([]float64{0.5, 0.5, 0.5, 0.5})
	if math.Float64bits(m1) != math.Float64bits(m2) || math.Float64bits(v1) != math.Float64bits(v2) {
		t.Fatalf("post-Add prediction diverged: (%v,%v) vs (%v,%v)", m1, v1, m2, v2)
	}
}

// TestRegressorMarshalUnfitted pins the empty-model round trip.
func TestRegressorMarshalUnfitted(t *testing.T) {
	g := NewRegressor(NewSEARD(2, 1, 1), 1e-6)
	blob, err := g.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var h Regressor
	if err := h.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if h.Fitted() {
		t.Fatal("unfitted model round-tripped as fitted")
	}
}

// TestRegressorUnmarshalCorrupt pins the corruption errors: truncation
// and version skew must fail loudly, never yield a partial model.
func TestRegressorUnmarshalCorrupt(t *testing.T) {
	g := fitDemoModel(t, 10)
	blob, err := g.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var h Regressor
	if err := h.UnmarshalBinary(blob[:len(blob)/2]); err == nil {
		t.Fatal("truncated blob unmarshalled without error")
	}
	skew := append([]byte(nil), blob...)
	skew[3] = 99
	if err := h.UnmarshalBinary(skew); err == nil {
		t.Fatal("version-skewed blob unmarshalled without error")
	}
	if err := h.UnmarshalBinary([]byte("nope")); err == nil {
		t.Fatal("garbage unmarshalled without error")
	}
}
