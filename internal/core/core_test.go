package core

import (
	"testing"
	"time"

	"autodbaas/internal/agent"
	"autodbaas/internal/cluster"
	"autodbaas/internal/knobs"
	"autodbaas/internal/tuner/bo"
	"autodbaas/internal/workload"
)

func newSystem(t *testing.T) *System {
	t.Helper()
	tn, err := bo.New(bo.DefaultOptions(knobs.Postgres))
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSystem(tn)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func addTPCC(t *testing.T, s *System, id string, gate bool) *agent.Agent {
	t.Helper()
	a, err := s.AddInstance(InstanceSpec{
		Provision: cluster.ProvisionSpec{
			ID: id, Plan: "m4.large", Engine: knobs.Postgres,
			DBSizeBytes: 21 * cluster.GiB, Seed: 21,
		},
		Workload: workload.NewAdulteratedTPCC(21*cluster.GiB, 3000, 0.8),
		Agent:    agent.Options{TickEvery: 5 * time.Minute, GateSamples: gate},
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewSystemRequiresTuner(t *testing.T) {
	if _, err := NewSystem(); err == nil {
		t.Fatal("no tuners accepted")
	}
}

func TestAddInstanceWiring(t *testing.T) {
	s := newSystem(t)
	a := addTPCC(t, s, "db-1", true)
	if got, ok := s.Agent("db-1"); !ok || got != a {
		t.Fatal("agent lookup failed")
	}
	if _, ok := s.Monitor("db-1"); !ok {
		t.Fatal("monitor missing")
	}
	if _, err := s.Orchestrator.Credentials("db-1"); err != nil {
		t.Fatal("orchestrator does not know the instance")
	}
	if len(s.Agents()) != 1 {
		t.Fatal("agents list wrong")
	}
	// Duplicate ID is rejected at the provisioner.
	if _, err := s.AddInstance(InstanceSpec{
		Provision: cluster.ProvisionSpec{ID: "db-1", Plan: "m4.large", Engine: knobs.Postgres, DBSizeBytes: cluster.GiB},
		Workload:  workload.NewYCSB(cluster.GiB, 10),
	}); err == nil {
		t.Fatal("duplicate instance accepted")
	}
	if _, err := s.AddInstance(InstanceSpec{
		Provision: cluster.ProvisionSpec{ID: "db-x", Plan: "m4.large", Engine: knobs.Postgres, DBSizeBytes: cluster.GiB},
	}); err == nil {
		t.Fatal("nil workload accepted")
	}
}

func TestStepDrivesThrottlesSamplesAndMonitoring(t *testing.T) {
	s := newSystem(t)
	addTPCC(t, s, "db-1", true)
	var throttles int
	for i := 0; i < 8; i++ {
		res := s.Step(5 * time.Minute)
		throttles += res.Throttles
		if _, ok := res.Windows["db-1"]; !ok {
			t.Fatal("window stats missing")
		}
	}
	if throttles == 0 {
		t.Fatal("no throttles across 40 minutes of adulterated TPCC")
	}
	if s.Repository.Len() == 0 {
		t.Fatal("no samples reached the repository")
	}
	m, _ := s.Monitor("db-1")
	if m.Series("disk_latency_ms").Len() != 8 {
		t.Fatalf("monitoring series has %d points", m.Series("disk_latency_ms").Len())
	}
	if s.Director.TuningRequests() == 0 {
		t.Fatal("throttles did not become tuning requests")
	}
}

func TestRecommendationsEventuallyApplied(t *testing.T) {
	s := newSystem(t)
	a := addTPCC(t, s, "db-1", true)
	before := a.Instance().Replica.Master().Config()
	// Enough steps for the tuner to accumulate ≥4 samples and recommend.
	s.RunFor(3*time.Hour, 5*time.Minute)
	if s.DFA.Applied() == 0 {
		t.Fatal("no recommendation was ever applied")
	}
	after := a.Instance().Replica.Master().Config()
	if after.Equal(before) {
		t.Fatal("config unchanged after applied recommendations")
	}
}

func TestMaintenanceWindowViaSystem(t *testing.T) {
	s := newSystem(t)
	s.Step(5 * time.Minute) // no instances yet: no-op
	addTPCC(t, s, "db-1", true)
	s.RunFor(time.Hour, 5*time.Minute)
	if err := s.MaintenanceWindow("db-1"); err != nil {
		t.Fatal(err)
	}
	if err := s.MaintenanceWindow("ghost"); err == nil {
		t.Fatal("unknown instance accepted")
	}
}
