package core

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"autodbaas/internal/checkpoint"
)

// Windows returns how many fleet steps the system has completed. The
// counter rides the snapshot manifest, so a restored system continues
// the window numbering of the run that wrote the checkpoint.
func (s *System) Windows() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.windows
}

// codecView assembles the checkpoint codec's handle set from the live
// system. The fleet is listed in onboarding order — the same order Step
// merges in — so snapshot sections are deterministic.
func (s *System) codecView() checkpoint.System {
	s.mu.Lock()
	view := checkpoint.System{
		Window:       s.windows,
		Generation:   s.generation,
		Parallelism:  s.parallelism,
		Orchestrator: s.Orchestrator,
		DFA:          s.DFA,
		Director:     s.Director,
		Repository:   s.Repository,
		Tuners:       s.Tuners,
		Faults:       s.faults,
		Extras:       append([]checkpoint.Extra(nil), s.ckptExtras...),
	}
	for _, id := range s.order {
		view.Fleet = append(view.Fleet, checkpoint.FleetMember{
			ID:      id,
			Gen:     s.memberGens[id],
			Agent:   s.agents[id],
			Monitor: s.monitors[id],
		})
	}
	s.mu.Unlock()
	return view
}

// RegisterCheckpointExtra attaches an auxiliary snapshot section
// ("extra/<name>") contributed by a subsystem layered on top of the
// System — the fleet service's control-plane state, for example. save
// runs on every Checkpoint; restore, when non-nil, runs at the end of
// Restore with the section payload. Registering the same name again
// replaces the previous hooks.
func (s *System) RegisterCheckpointExtra(name string, save func() ([]byte, error), restore func([]byte) error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, ex := range s.ckptExtras {
		if ex.Name == name {
			s.ckptExtras[i] = checkpoint.Extra{Name: name, Save: save, Restore: restore}
			return
		}
	}
	s.ckptExtras = append(s.ckptExtras, checkpoint.Extra{Name: name, Save: save, Restore: restore})
}

// Checkpoint serializes the system's entire mutable state into w. The
// fan-out queue is drained first, so the snapshot sits on a clean
// window boundary; call it between Steps, never concurrently with one.
func (s *System) Checkpoint(w io.Writer) error {
	s.Repository.Flush()
	return checkpoint.Write(w, s.codecView())
}

// Restore loads a snapshot into this system, which must be freshly
// rebuilt with the same construction parameters (instance specs, seeds,
// tuner fleet, options, fault profile) as the system that wrote it —
// the rebuild-then-restore contract. On success the window counter
// resumes from the snapshot and stepping forward reproduces the
// uninterrupted run bit-for-bit.
func (s *System) Restore(r io.Reader) error {
	man, err := checkpoint.Read(r, s.codecView())
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.windows = man.Window
	s.generation = man.Generation
	for _, im := range man.Instances {
		s.memberGens[im.ID] = im.Gen
	}
	s.mu.Unlock()
	return nil
}

// ExportInstanceSection serializes one live member's full state — the
// tuning agent with its embedded TDE, every node engine (virtual clock
// and PRNG positions included) and the monitor series — in the snapshot
// container's "instance/<id>" section format, plus the member's
// topology pin. The repository fan-out is drained first, so every
// sample the instance uploaded has reached the tuners and its training
// history stays behind with this system. This is the shard runtime's
// migration export: rebalancing an instance between shards is exactly
// checkpoint-out here, restore-in via ImportInstanceSection there.
func (s *System) ExportInstanceSection(id string) ([]byte, checkpoint.InstanceMeta, error) {
	s.Repository.Flush()
	s.mu.Lock()
	a, ok := s.agents[id]
	mon := s.monitors[id]
	gen := s.memberGens[id]
	s.mu.Unlock()
	if !ok {
		return nil, checkpoint.InstanceMeta{}, fmt.Errorf("core: no agent for %s", id)
	}
	return checkpoint.EncodeInstance(checkpoint.FleetMember{ID: id, Gen: gen, Agent: a, Monitor: mon})
}

// ImportInstanceSection restores an exported instance section onto a
// member that was just (re-)provisioned into this system via
// AddInstance with the same spec — the rebuild-then-restore contract at
// single-instance scope. The payload must match the live member's
// topology pin (a mismatch fails with a named-instance error before
// any state mutates), and the imported configuration is persisted as
// the orchestrator's new source of truth, exactly as a resize would.
// Call it between Steps, never concurrently with one.
func (s *System) ImportInstanceSection(id string, meta checkpoint.InstanceMeta, payload []byte) error {
	s.mu.Lock()
	a, ok := s.agents[id]
	mon := s.monitors[id]
	gen := s.memberGens[id]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("core: no agent for %s", id)
	}
	fm := checkpoint.FleetMember{ID: id, Gen: gen, Agent: a, Monitor: mon}
	if err := checkpoint.DecodeInstance(fm, meta, payload); err != nil {
		return err
	}
	return s.Orchestrator.PersistConfig(id, a.Instance().Replica.Master().Config())
}

// SetAutoCheckpoint enables periodic snapshots: after every everyN-th
// window Step writes dir/checkpoint-<window>.ckpt (atomically, via a
// temp file rename) and refreshes dir/latest.ckpt. everyN <= 0 or an
// empty dir disables. Write failures are reported through the returned
// error of the next CheckpointNow; Step itself never fails a window on
// a checkpoint error — it records it for LastCheckpointErr.
func (s *System) SetAutoCheckpoint(dir string, everyN int) {
	s.mu.Lock()
	s.ckptDir = dir
	s.ckptEvery = everyN
	s.mu.Unlock()
}

// LastCheckpoint returns the path of the most recent auto-checkpoint
// and the window it covered (empty until one has been written).
func (s *System) LastCheckpoint() (string, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ckptLastPath, s.ckptLastWindow
}

// LastCheckpointErr returns the most recent auto-checkpoint failure
// (nil when the last write succeeded).
func (s *System) LastCheckpointErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ckptLastErr
}

// CheckpointNow writes a snapshot to dir/checkpoint-<window>.ckpt and
// refreshes dir/latest.ckpt, atomically. It returns the snapshot path.
func (s *System) CheckpointNow(dir string) (string, error) {
	s.mu.Lock()
	window := s.windows
	s.mu.Unlock()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("checkpoint-%06d.ckpt", window))
	if err := s.writeSnapshotFile(path); err != nil {
		return "", err
	}
	latest := filepath.Join(dir, "latest.ckpt")
	tmp := latest + ".tmp"
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return "", err
	}
	if err := os.Rename(tmp, latest); err != nil {
		return "", err
	}
	s.mu.Lock()
	s.ckptLastPath = path
	s.ckptLastWindow = window
	s.mu.Unlock()
	return path, nil
}

// writeSnapshotFile writes one snapshot atomically (temp file + rename)
// so a crash mid-write never leaves a half-valid checkpoint under the
// final name — the corruption tests cover the torn-file case anyway.
func (s *System) writeSnapshotFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := s.Checkpoint(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// maybeAutoCheckpoint runs at the end of Step, after the window counter
// has advanced.
func (s *System) maybeAutoCheckpoint() {
	s.mu.Lock()
	dir, every, window := s.ckptDir, s.ckptEvery, s.windows
	s.mu.Unlock()
	if dir == "" || every <= 0 || window%every != 0 {
		return
	}
	_, err := s.CheckpointNow(dir)
	s.mu.Lock()
	s.ckptLastErr = err
	s.mu.Unlock()
}

// RestoreLatest restores from dir/latest.ckpt — the resume entry point
// the -resume flag uses.
func (s *System) RestoreLatest(dir string) error {
	f, err := os.Open(filepath.Join(dir, "latest.ckpt"))
	if err != nil {
		return err
	}
	defer f.Close()
	return s.Restore(f)
}
