package core

import (
	"fmt"
	"testing"
	"time"

	"autodbaas/internal/agent"
	"autodbaas/internal/cluster"
	"autodbaas/internal/faults"
	"autodbaas/internal/knobs"
	"autodbaas/internal/safety"
	"autodbaas/internal/tuner/bo"
	"autodbaas/internal/workload"
)

// soakFleet builds the 20-instance soak fleet (mixed workloads, every
// other instance with a replica) and returns the system.
func soakFleet(t *testing.T, in *faults.Injector) *System {
	t.Helper()
	return soakFleetGated(t, in, nil)
}

// soakFleetGated is soakFleet with an optional safe-tuning gate.
func soakFleetGated(t *testing.T, in *faults.Injector, gate *safety.Options) *System {
	t.Helper()
	tn, err := bo.New(bo.Options{Engine: knobs.Postgres, Candidates: 60, MaxSamplesPerFit: 60, UCBBeta: 0.5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSystemWithOptions(Options{Faults: in, Safety: gate}, tn)
	if err != nil {
		t.Fatal(err)
	}
	plans := []string{"t2.medium", "m4.large", "t2.large", "m4.xlarge"}
	const fleet = 20
	for i := 0; i < fleet; i++ {
		var gen workload.Generator
		switch i % 5 {
		case 3:
			gen = workload.NewTPCC(12*cluster.GiB, 1500)
		case 4:
			gen = workload.NewYCSB(10*cluster.GiB, 2000)
		default:
			gen = workload.NewProduction()
		}
		if _, err := s.AddInstance(InstanceSpec{
			Provision: cluster.ProvisionSpec{
				ID: fmt.Sprintf("db-%02d", i), Plan: plans[i%len(plans)],
				Engine: knobs.Postgres, DBSizeBytes: gen.DBSizeBytes(),
				Slaves: i % 2, Seed: 100 + int64(i),
			},
			Workload: gen,
			Agent:    agent.Options{TickEvery: 5 * time.Minute, GateSamples: true},
		}); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// soakRun steps the system for the given number of simulated hours with
// 10-minute windows, verifying every step's snapshot consistency, and
// returns the total throttles.
func soakRun(t *testing.T, s *System, hours int) int {
	t.Helper()
	fleet := len(s.Agents())
	throttles := 0
	steps := hours * 6
	for i := 0; i < steps; i++ {
		res := s.Step(10 * time.Minute)
		throttles += res.Throttles
		// Snapshot consistency: every step reports a window and an event
		// slice for every instance — a crash-looping instance may error,
		// but it must never vanish from the snapshot.
		if len(res.Windows) != fleet {
			t.Fatalf("step %d: %d windows for %d instances", i, len(res.Windows), fleet)
		}
		for _, a := range s.Agents() {
			if _, ok := res.Windows[a.Instance().ID]; !ok {
				t.Fatalf("step %d: instance %s missing from snapshot", i, a.Instance().ID)
			}
		}
	}
	return throttles
}

// TestFleetSurvivesFaultSoak is the chaos soak: a 20-instance fleet, two
// simulated days under the medium fault profile, then a quiesce phase.
// The fleet must come out whole — zero lost instances, bounded throttle
// inflation versus a clean run, and every Step snapshot consistent.
func TestFleetSurvivesFaultSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak")
	}
	const hours = 48

	clean := soakRun(t, soakFleet(t, nil), hours)

	in := faults.New(1, faults.Medium())
	s := soakFleet(t, in)
	chaos := soakRun(t, s, hours)
	if in.InjectedTotal() == 0 {
		t.Fatal("soak injected no faults")
	}
	t.Logf("soak: clean throttles=%d chaos throttles=%d injected=%d (%s)", clean, chaos, in.InjectedTotal(), in)

	// Quiesce: injection stops, already-down nodes recover on their
	// schedule and the reconciler repairs what chaos left behind.
	in.Disable()
	soakRun(t, s, 2)

	for _, a := range s.Agents() {
		for ni, node := range a.Instance().Replica.Nodes() {
			if node.Down() {
				t.Errorf("instance %s node %d still down after quiesce", a.Instance().ID, ni)
			}
		}
	}
	// Bounded degradation: chaos may cost throttles (crashed windows,
	// skipped tuning rounds) but not unbounded ones.
	if limit := clean*4 + 100; chaos > limit {
		t.Errorf("throttle inflation unbounded: clean=%d chaos=%d limit=%d", clean, chaos, limit)
	}
}

// TestGatedFleetChaosSoakNoRegressions is the safe-tuning gate's
// headline guarantee under chaos: a 20-instance fleet, one simulated
// day of medium faults with the gate armed, and not a single apply is
// allowed to regress a live instance — every bad candidate dies in the
// canary or the trust region first. The gate must also not cost
// throughput: gated throttles stay within the ungated chaos run's.
func TestGatedFleetChaosSoakNoRegressions(t *testing.T) {
	if testing.Short() {
		t.Skip("gated chaos soak")
	}
	const hours = 24

	ungated := soakRun(t, soakFleet(t, faults.New(1, faults.Medium())), hours)

	opts := safety.DefaultOptions()
	in := faults.New(1, faults.Medium())
	s := soakFleetGated(t, in, &opts)
	gated := soakRun(t, s, hours)
	if in.InjectedTotal() == 0 {
		t.Fatal("gated soak injected no faults")
	}

	vetoes, canaries, rollbacks, regressing := s.Director.SafetyTotals()
	t.Logf("gated soak: throttles=%d (ungated %d) vetoes=%d canaries=%d rollbacks=%d regressing=%d",
		gated, ungated, vetoes, canaries, rollbacks, regressing)
	if canaries == 0 {
		t.Fatal("gate never ran a canary — not engaged")
	}
	if regressing != 0 {
		t.Errorf("autodbaas_safety_regressing_applies_total = %d, want 0", regressing)
	}
	if rollbacks != 0 {
		t.Errorf("rollbacks = %d, want 0 (nothing regressed, nothing to roll back)", rollbacks)
	}
	// Protection must not cost throughput: the gate only blocks applies,
	// so a gated fleet should throttle no more than the ungated one.
	if gated > ungated {
		t.Errorf("gated throttles %d > ungated %d", gated, ungated)
	}
}
