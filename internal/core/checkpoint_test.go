package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"autodbaas/internal/agent"
	"autodbaas/internal/checkpoint"
	"autodbaas/internal/cluster"
	"autodbaas/internal/faults"
	"autodbaas/internal/knobs"
	"autodbaas/internal/monitor"
	"autodbaas/internal/prng"
	"autodbaas/internal/tuner/bo"
	"autodbaas/internal/tuner/rl"
	"autodbaas/internal/workload"
)

// ckptFingerprint is the deep fleet fingerprint the resume guarantee is
// stated over: everything fleetFingerprint covers, plus the full
// monitor series (values and timestamps, not just lengths) and the
// per-class TDE throttle counters.
type ckptFingerprint struct {
	Throttles       map[string]map[knobs.Class]int
	Samples         int
	TuningRequests  int
	Recommendations int
	ApplyFailures   int
	PlanUpgrades    int
	Monitor         map[string]map[string][]monitor.Point
	Configs         map[string]knobs.Config
	Clocks          map[string]time.Time
}

// fingerprintSystem derives the fingerprint from system state alone (no
// step-result accumulation), so interrupted and uninterrupted runs are
// compared on equal terms.
func fingerprintSystem(s *System) ckptFingerprint {
	fp := ckptFingerprint{
		Throttles: make(map[string]map[knobs.Class]int),
		Samples:   s.Repository.Len(),
		Monitor:   make(map[string]map[string][]monitor.Point),
		Configs:   make(map[string]knobs.Config),
		Clocks:    make(map[string]time.Time),
	}
	fp.TuningRequests, fp.Recommendations, fp.ApplyFailures, fp.PlanUpgrades = s.Director.Counters()
	for _, a := range s.Agents() {
		id := a.Instance().ID
		fp.Throttles[id] = a.TDE().Throttles()
		fp.Configs[id] = a.Instance().Replica.Master().Config()
		fp.Clocks[id] = a.Instance().Replica.Master().Now()
		if m, ok := s.Monitor(id); ok {
			fp.Monitor[id] = m.CheckpointState()
		}
	}
	return fp
}

// buildCkptFleet constructs the mixed 6-instance checkpoint fleet with
// a BO + RL tuner pair. Identical arguments produce identical systems —
// the rebuild-then-restore contract's "same construction parameters".
func buildCkptFleet(t *testing.T, parallelism int, in *faults.Injector) *System {
	t.Helper()
	tb, err := bo.New(bo.Options{Engine: knobs.Postgres, Candidates: 60, MaxSamplesPerFit: 60, UCBBeta: 0.5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := rl.New(rl.Options{Engine: knobs.Postgres, Hidden: 16, ReplayCap: 256, BatchSize: 8, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSystemWithOptions(Options{Parallelism: parallelism, Faults: in}, tb, tr)
	if err != nil {
		t.Fatal(err)
	}
	gens := []func() workload.Generator{
		func() workload.Generator { return workload.NewAdulteratedTPCC(21*cluster.GiB, 3000, 0.8) },
		func() workload.Generator { return workload.NewProduction() },
		func() workload.Generator { return workload.NewYCSB(10*cluster.GiB, 2000) },
	}
	plans := []string{"m4.large", "t2.large", "m4.xlarge"}
	const fleet = 6
	for i := 0; i < fleet; i++ {
		gen := gens[i%len(gens)]()
		if _, err := s.AddInstance(InstanceSpec{
			Provision: cluster.ProvisionSpec{
				ID: fmt.Sprintf("db-%02d", i), Plan: plans[i%len(plans)],
				Engine: knobs.Postgres, DBSizeBytes: gen.DBSizeBytes(),
				Slaves: i % 2, Seed: 100 + int64(i),
			},
			Workload: gen,
			Agent:    agent.Options{TickEvery: 5 * time.Minute, GateSamples: true},
		}); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// stepN advances n five-minute windows.
func stepN(s *System, n int) {
	for i := 0; i < n; i++ {
		s.Step(5 * time.Minute)
	}
}

// TestCheckpointResumeEquivalence is the subsystem's hard guarantee:
// run-to-N and run-to-K/snapshot/restore-into-fresh-process/continue-
// to-N produce bit-for-bit identical fleet fingerprints, at parallelism
// 1, 4, 8 and 16, clean and under the medium fault profile.
func TestCheckpointResumeEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("checkpoint equivalence sweep")
	}
	const total, cut = 24, 11 // windows; cut deliberately not a step multiple of anything
	for _, par := range []int{1, 4, 8, 16} {
		for _, chaos := range []bool{false, true} {
			name := fmt.Sprintf("par=%d,chaos=%v", par, chaos)
			t.Run(name, func(t *testing.T) {
				inject := func() *faults.Injector {
					if !chaos {
						return nil
					}
					return faults.New(99, faults.Medium())
				}

				// Uninterrupted reference run.
				ref := buildCkptFleet(t, par, inject())
				stepN(ref, total)
				want := fingerprintSystem(ref)
				if want.Samples == 0 || want.TuningRequests == 0 {
					t.Fatalf("degenerate reference run: %+v", want)
				}

				// Interrupted run: step to cut, snapshot, abandon.
				first := buildCkptFleet(t, par, inject())
				stepN(first, cut)
				var snap bytes.Buffer
				if err := first.Checkpoint(&snap); err != nil {
					t.Fatalf("checkpoint: %v", err)
				}

				// Fresh process: rebuild, restore, continue.
				resumed := buildCkptFleet(t, par, inject())
				if err := resumed.Restore(bytes.NewReader(snap.Bytes())); err != nil {
					t.Fatalf("restore: %v", err)
				}
				if got := resumed.Windows(); got != cut {
					t.Fatalf("restored window counter = %d, want %d", got, cut)
				}
				stepN(resumed, total-cut)
				got := fingerprintSystem(resumed)
				if !reflect.DeepEqual(want, got) {
					t.Errorf("resumed run diverged from uninterrupted run\n  want: %+v\n  got:  %+v", want, got)
				}
			})
		}
	}
}

// TestCheckpointCrashResumeSoak is the crown-jewel scenario: a
// 20-instance fleet under the medium fault profile auto-checkpoints
// every 6 windows; the process "dies" at a fault-injector-chosen window
// and a fresh process restores the last auto-checkpoint and replays to
// the horizon. The fingerprint must match the uninterrupted run's.
func TestCheckpointCrashResumeSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("20-instance crash-resume soak")
	}
	const faultSeed = 4242
	const totalWindows = 48 // 8 simulated hours at 10-minute windows
	const every = 6

	// The kill point is drawn from the fault seed itself — the injector
	// chooses when the process dies, somewhere in the middle third.
	killSrc := prng.NewSource(faultSeed)
	kill := totalWindows/3 + int(killSrc.Uint64()%uint64(totalWindows/3))

	run := func(s *System, n int) {
		for i := 0; i < n; i++ {
			s.Step(10 * time.Minute)
		}
	}

	// Uninterrupted reference.
	ref := soakFleet(t, faults.New(faultSeed, faults.Medium()))
	run(ref, totalWindows)
	want := fingerprintSystem(ref)

	// Doomed run with auto-checkpointing, killed mid-flight.
	dir := t.TempDir()
	doomed := soakFleet(t, faults.New(faultSeed, faults.Medium()))
	doomed.SetAutoCheckpoint(dir, every)
	run(doomed, kill)
	if err := doomed.LastCheckpointErr(); err != nil {
		t.Fatalf("auto-checkpoint failed before the crash: %v", err)
	}
	lastPath, lastWindow := doomed.LastCheckpoint()
	if lastPath == "" {
		t.Fatalf("no auto-checkpoint written in %d windows", kill)
	}
	if lastWindow != (kill/every)*every {
		t.Fatalf("last auto-checkpoint at window %d, want %d", lastWindow, (kill/every)*every)
	}
	// Process dies here; `doomed` is abandoned, only the files survive.

	resumed := soakFleet(t, faults.New(faultSeed, faults.Medium()))
	if err := resumed.RestoreLatest(dir); err != nil {
		t.Fatalf("restore from %s: %v", dir, err)
	}
	if got := resumed.Windows(); got != lastWindow {
		t.Fatalf("resumed at window %d, want %d", got, lastWindow)
	}
	run(resumed, totalWindows-lastWindow)
	got := fingerprintSystem(resumed)
	if !reflect.DeepEqual(want, got) {
		t.Errorf("crash-resumed soak diverged from uninterrupted run (killed at %d, resumed from %d)", kill, lastWindow)
	}
}

// snapshotForCorruption produces one small valid snapshot plus the
// builder for fresh systems to restore into.
func snapshotForCorruption(t *testing.T) ([]byte, func() *System) {
	t.Helper()
	build := func() *System { return buildCkptFleet(t, 2, nil) }
	s := build()
	stepN(s, 6)
	var buf bytes.Buffer
	if err := s.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), build
}

// frame locates every section frame in a container: header is 6 bytes,
// then [u16 nameLen][name][u64 len][payload][u32 crc] repeating.
type frame struct {
	name          string
	payloadOffset int
	payloadLen    int
}

func walkFrames(t *testing.T, data []byte) []frame {
	t.Helper()
	var out []frame
	off := 6
	for off < len(data) {
		nameLen := int(binary.LittleEndian.Uint16(data[off:]))
		name := string(data[off+2 : off+2+nameLen])
		plOff := off + 2 + nameLen + 8
		plLen := int(binary.LittleEndian.Uint64(data[off+2+nameLen:]))
		out = append(out, frame{name: name, payloadOffset: plOff, payloadLen: plLen})
		off = plOff + plLen + 4
	}
	return out
}

// TestRestoreRejectsTruncatedSnapshot: cutting the file anywhere must
// fail with a section-named truncation error, never restore silently.
func TestRestoreRejectsTruncatedSnapshot(t *testing.T) {
	if testing.Short() {
		t.Skip("corruption sweep builds fleets")
	}
	data, build := snapshotForCorruption(t)
	for _, cut := range []int{len(data) - 7, len(data) / 2, 40, 3} {
		s := build()
		err := s.Restore(bytes.NewReader(data[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d restored successfully", cut)
		}
		if !errors.Is(err, checkpoint.ErrTruncated) && !errors.Is(err, checkpoint.ErrBadMagic) &&
			!errors.Is(err, checkpoint.ErrChecksum) && !errors.Is(err, checkpoint.ErrManifest) {
			t.Errorf("truncation at %d: unexpected error class: %v", cut, err)
		}
	}
}

// TestRestoreRejectsFlippedByte flips one payload byte in every section
// and asserts each restore fails with an error naming that section.
func TestRestoreRejectsFlippedByte(t *testing.T) {
	if testing.Short() {
		t.Skip("corruption sweep builds fleets")
	}
	data, build := snapshotForCorruption(t)
	frames := walkFrames(t, data)
	if len(frames) < 8 {
		t.Fatalf("expected a manifest plus 7+ sections, got %d frames", len(frames))
	}
	for _, fr := range frames {
		if fr.payloadLen == 0 {
			continue
		}
		corrupt := append([]byte(nil), data...)
		corrupt[fr.payloadOffset+fr.payloadLen/2] ^= 0x40
		s := build()
		err := s.Restore(bytes.NewReader(corrupt))
		if err == nil {
			t.Fatalf("flipped byte in section %q restored successfully", fr.name)
		}
		if !errors.Is(err, checkpoint.ErrChecksum) && !errors.Is(err, checkpoint.ErrManifest) {
			t.Errorf("section %q: want checksum/manifest error, got: %v", fr.name, err)
		}
		if !strings.Contains(err.Error(), fr.name) && fr.name != "manifest" {
			t.Errorf("section %q: error does not name the section: %v", fr.name, err)
		}
	}
}

// TestRestoreRejectsVersionSkew bumps the header version and asserts
// the reader refuses with ErrVersion.
func TestRestoreRejectsVersionSkew(t *testing.T) {
	if testing.Short() {
		t.Skip("corruption sweep builds fleets")
	}
	data, build := snapshotForCorruption(t)
	skewed := append([]byte(nil), data...)
	binary.LittleEndian.PutUint16(skewed[4:6], checkpoint.FormatVersion+1)
	s := build()
	if err := s.Restore(bytes.NewReader(skewed)); !errors.Is(err, checkpoint.ErrVersion) {
		t.Errorf("want ErrVersion, got: %v", err)
	}
	// Bad magic is its own precise failure.
	garbled := append([]byte(nil), data...)
	garbled[0] = 'X'
	s2 := build()
	if err := s2.Restore(bytes.NewReader(garbled)); !errors.Is(err, checkpoint.ErrBadMagic) {
		t.Errorf("want ErrBadMagic, got: %v", err)
	}
}

// TestRestoreRejectsTopologyMismatch: a snapshot must not restore into
// a system built with different construction parameters.
func TestRestoreRejectsTopologyMismatch(t *testing.T) {
	if testing.Short() {
		t.Skip("corruption sweep builds fleets")
	}
	data, _ := snapshotForCorruption(t)
	// Same tuners, one fewer instance.
	tb, err := bo.New(bo.Options{Engine: knobs.Postgres, Candidates: 60, MaxSamplesPerFit: 60, UCBBeta: 0.5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := rl.New(rl.Options{Engine: knobs.Postgres, Hidden: 16, ReplayCap: 256, BatchSize: 8, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSystemWithOptions(Options{Parallelism: 2}, tb, tr)
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewProduction()
	if _, err := s.AddInstance(InstanceSpec{
		Provision: cluster.ProvisionSpec{ID: "db-00", Plan: "m4.large", Engine: knobs.Postgres, DBSizeBytes: gen.DBSizeBytes(), Seed: 100},
		Workload:  gen,
		Agent:     agent.Options{TickEvery: 5 * time.Minute, GateSamples: true},
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Restore(bytes.NewReader(data)); !errors.Is(err, checkpoint.ErrManifest) {
		t.Errorf("want ErrManifest for topology mismatch, got: %v", err)
	}
}

// TestTopologyMismatchNamesInstances: with dynamic cohorts a bare size
// mismatch is useless to an operator — the error must name which
// instance IDs differ between the snapshot and the rebuilt system.
func TestTopologyMismatchNamesInstances(t *testing.T) {
	if testing.Short() {
		t.Skip("builds fleets")
	}
	build := func(ids ...string) *System {
		t.Helper()
		tb, err := bo.New(bo.Options{Engine: knobs.Postgres, Candidates: 60, MaxSamplesPerFit: 60, UCBBeta: 0.5, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewSystem(tb)
		if err != nil {
			t.Fatal(err)
		}
		for i, id := range ids {
			gen := workload.NewProduction()
			if _, err := s.AddInstance(InstanceSpec{
				Provision: cluster.ProvisionSpec{ID: id, Plan: "m4.large", Engine: knobs.Postgres, DBSizeBytes: gen.DBSizeBytes(), Seed: 100 + int64(i)},
				Workload:  gen,
				Agent:     agent.Options{TickEvery: 5 * time.Minute, GateSamples: true},
			}); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}
	var buf bytes.Buffer
	if err := build("db-a", "db-b").Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	snap := buf.Bytes()

	cases := []struct {
		name string
		sys  *System
		want []string
	}{
		{"snapshot member absent", build("db-a"), []string{"db-b", "which the system lacks"}},
		{"system member unknown to snapshot", build("db-a", "db-b", "db-c"), []string{"db-c", "which the snapshot lacks"}},
		{"disjoint drift names both sides", build("db-a", "db-x"), []string{"db-b", "db-x"}},
		{"same cohort, different onboarding order", build("db-b", "db-a"), []string{"different order"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.sys.Restore(bytes.NewReader(snap))
			if !errors.Is(err, checkpoint.ErrManifest) {
				t.Fatalf("want ErrManifest, got: %v", err)
			}
			for _, want := range tc.want {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("error %q does not mention %q", err, want)
				}
			}
		})
	}
}

// TestAutoCheckpointFiles: periodic snapshots land where configured and
// latest.ckpt always mirrors the newest one.
func TestAutoCheckpointFiles(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet build")
	}
	dir := t.TempDir()
	s := buildCkptFleet(t, 2, nil)
	s.SetAutoCheckpoint(dir, 3)
	stepN(s, 7)
	if err := s.LastCheckpointErr(); err != nil {
		t.Fatal(err)
	}
	path, window := s.LastCheckpoint()
	if window != 6 {
		t.Fatalf("last auto-checkpoint window = %d, want 6", window)
	}
	for _, p := range []string{path, filepath.Join(dir, "latest.ckpt"), filepath.Join(dir, "checkpoint-000003.ckpt")} {
		if _, err := os.Stat(p); err != nil {
			t.Errorf("expected snapshot file: %v", err)
		}
	}
	a, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, "latest.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("latest.ckpt does not mirror the newest checkpoint")
	}
}
