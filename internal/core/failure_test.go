package core

import (
	"errors"
	"testing"
	"time"

	"autodbaas/internal/agent"
	"autodbaas/internal/cluster"
	"autodbaas/internal/knobs"
	"autodbaas/internal/simdb"
	"autodbaas/internal/tuner"
	"autodbaas/internal/tuner/bo"
	"autodbaas/internal/workload"
)

// evilTuner always recommends an OOM-bound configuration.
type evilTuner struct{ calls int }

func (e *evilTuner) Name() string               { return "evil" }
func (e *evilTuner) Observe(tuner.Sample) error { return nil }
func (e *evilTuner) Recommend(tuner.Request) (tuner.Recommendation, error) {
	e.calls++
	return tuner.Recommendation{Config: knobs.Config{
		"work_mem":             2 * cluster.GiB,
		"maintenance_work_mem": 8 * cluster.GiB,
		"temp_buffers":         4 * cluster.GiB,
	}}, nil
}

// A tuner that only emits destructive recommendations must never take
// the fleet down: the DFA rejects every apply and the databases keep
// serving on their previous configuration.
func TestEvilTunerCannotKillTheFleet(t *testing.T) {
	et := &evilTuner{}
	sys, err := NewSystem(et)
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewAdulteratedTPCC(21*cluster.GiB, 3000, 0.8)
	a, err := sys.AddInstance(InstanceSpec{
		Provision: cluster.ProvisionSpec{
			ID: "victim", Plan: "m4.large", Engine: knobs.Postgres,
			DBSizeBytes: gen.DBSizeBytes(), Slaves: 1, Seed: 13,
		},
		Workload: gen,
		Agent:    agent.Options{TickEvery: 5 * time.Minute, GateSamples: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	before := a.Instance().Replica.Master().Config()
	for i := 0; i < 12; i++ {
		sys.Step(5 * time.Minute)
	}
	if et.calls == 0 {
		t.Fatal("evil tuner never consulted — no throttles?")
	}
	if sys.DFA.Rejected() == 0 {
		t.Fatal("destructive recommendations were not rejected")
	}
	if sys.DFA.Applied() != 0 {
		t.Fatal("a destructive recommendation was applied")
	}
	master := a.Instance().Replica.Master()
	if master.Down() {
		t.Fatal("master is down")
	}
	if !master.Config().Equal(before) {
		t.Fatal("config changed despite rejections")
	}
}

// A crashed master must not wedge the agent loop: time keeps advancing,
// the error is surfaced, and a restart through the orchestrator's
// redeploy path brings the persisted config back.
func TestCrashedMasterRecoversViaRedeploy(t *testing.T) {
	tn, err := bo.New(bo.DefaultOptions(knobs.Postgres))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(tn)
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewYCSB(10*cluster.GiB, 2000)
	a, err := sys.AddInstance(InstanceSpec{
		Provision: cluster.ProvisionSpec{
			ID: "flaky", Plan: "m4.large", Engine: knobs.Postgres,
			DBSizeBytes: gen.DBSizeBytes(), Seed: 4,
		},
		Workload: gen,
		Agent:    agent.Options{TickEvery: 5 * time.Minute},
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Step(5 * time.Minute)
	a.Instance().Replica.Master().Crash()
	res := sys.Step(5 * time.Minute)
	if !errors.Is(res.Errors["flaky"], simdb.ErrDown) {
		t.Fatalf("crash not surfaced: %v", res.Errors["flaky"])
	}
	if err := sys.Orchestrator.Redeploy("flaky"); err != nil {
		t.Fatal(err)
	}
	res = sys.Step(5 * time.Minute)
	if res.Errors["flaky"] != nil {
		t.Fatalf("still erroring after redeploy: %v", res.Errors["flaky"])
	}
	if res.Windows["flaky"].Achieved <= 0 {
		t.Fatal("no throughput after redeploy")
	}
}

// Redeploy (e.g. a security patch) must preserve the tuned config —
// §4's "a database reset or re-deployment doesn't overwrite the
// settings".
func TestRedeployKeepsTunedConfig(t *testing.T) {
	tn, err := bo.New(bo.Options{Engine: knobs.Postgres, Candidates: 100, UCBBeta: 0.3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(tn)
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewAdulteratedTPCC(21*cluster.GiB, 3000, 0.5)
	a, err := sys.AddInstance(InstanceSpec{
		Provision: cluster.ProvisionSpec{
			ID: "patched", Plan: "m4.xlarge", Engine: knobs.Postgres,
			DBSizeBytes: gen.DBSizeBytes(), Seed: 6,
		},
		Workload: gen,
		Agent:    agent.Options{TickEvery: 5 * time.Minute, GateSamples: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.RunFor(2*time.Hour, 5*time.Minute)
	if sys.DFA.Applied() == 0 {
		t.Skip("no recommendation landed in 2h — nothing to verify")
	}
	tuned := a.Instance().Replica.Master().Config()
	if err := sys.Orchestrator.Redeploy("patched"); err != nil {
		t.Fatal(err)
	}
	after := a.Instance().Replica.Master().Config()
	for _, n := range a.Instance().Replica.Master().KnobCatalog().TunableNames() {
		if after[n] != tuned[n] {
			t.Fatalf("redeploy lost tuned knob %s: %g → %g", n, tuned[n], after[n])
		}
	}
}
