package core

import (
	"reflect"
	"testing"

	"autodbaas/internal/faults"
	"autodbaas/internal/simdb"
	"autodbaas/internal/sqlparse"
	"autodbaas/internal/tuner/bo"
)

// setHotPathCaches flips every hot-path cache introduced by the perf
// pass (SQL template memoisation, engine plan cache, incremental GPR
// refits) and returns the previous settings.
func setHotPathCaches(on bool) (tpl, plan, inc bool) {
	tpl = sqlparse.SetTemplateCacheEnabled(on)
	plan = simdb.SetPlanCacheEnabled(on)
	inc = bo.SetIncrementalFit(on)
	return tpl, plan, inc
}

// TestHotPathCachesAreTransparent is the acceptance criterion of the
// hot-path pass: with every cache disabled, the fleet produces exactly
// the same fingerprint as with them enabled — at every parallelism
// level, both clean and under the medium chaos profile. The caches are
// pure memoisations; a single diverging float anywhere in two simulated
// hours of a six-instance fleet would show up here.
func TestHotPathCachesAreTransparent(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet sweep")
	}
	run := func(cached bool, par int, withFaults bool) (fleetFingerprint, map[string]int64) {
		tpl, plan, inc := setHotPathCaches(cached)
		defer func() {
			sqlparse.SetTemplateCacheEnabled(tpl)
			simdb.SetPlanCacheEnabled(plan)
			bo.SetIncrementalFit(inc)
		}()
		sqlparse.ResetTemplateCache()
		var in *faults.Injector
		if withFaults {
			in = faults.New(99, faults.Medium())
		}
		fp := runFleetWith(t, par, in)
		if in != nil {
			return fp, in.Counts()
		}
		return fp, nil
	}

	for _, tc := range []struct {
		name       string
		par        int
		withFaults bool
	}{
		{"par=1/clean", 1, false},
		{"par=4/clean", 4, false},
		{"par=16/clean", 16, false},
		{"par=4/faults", 4, true},
		{"par=16/faults", 16, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			on, onCounts := run(true, tc.par, tc.withFaults)
			off, offCounts := run(false, tc.par, tc.withFaults)
			if !reflect.DeepEqual(on, off) {
				t.Errorf("caches changed the simulation:\n  cached:   %+v\n  uncached: %+v", on, off)
			}
			if !reflect.DeepEqual(onCounts, offCounts) {
				t.Errorf("caches changed injected faults:\n  cached:   %v\n  uncached: %v", onCounts, offCounts)
			}
		})
	}
}
