package core

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"autodbaas/internal/agent"
	"autodbaas/internal/checkpoint"
	"autodbaas/internal/cluster"
	"autodbaas/internal/dfa"
	"autodbaas/internal/faults"
	"autodbaas/internal/knobs"
	"autodbaas/internal/safety"
	"autodbaas/internal/tuner/bo"
	"autodbaas/internal/workload"
)

// buildSafetyFleet is buildCkptFleet's gated sibling: same 6-instance
// mixed cohort, safe-tuning gate armed with default options.
func buildSafetyFleet(t *testing.T, parallelism int, in *faults.Injector) *System {
	t.Helper()
	opts := safety.DefaultOptions()
	return buildGateFleet(t, parallelism, in, &opts)
}

// buildGateFleet builds the cohort with an optional gate, so gated and
// ungated systems share every other construction parameter.
func buildGateFleet(t *testing.T, parallelism int, in *faults.Injector, gate *safety.Options) *System {
	t.Helper()
	tb, err := bo.New(bo.Options{Engine: knobs.Postgres, Candidates: 60, MaxSamplesPerFit: 60, UCBBeta: 0.5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSystemWithOptions(Options{Parallelism: parallelism, Faults: in, Safety: gate}, tb)
	if err != nil {
		t.Fatal(err)
	}
	gens := []func() workload.Generator{
		func() workload.Generator { return workload.NewAdulteratedTPCC(21*cluster.GiB, 3000, 0.8) },
		func() workload.Generator { return workload.NewProduction() },
		func() workload.Generator { return workload.NewYCSB(10*cluster.GiB, 2000) },
	}
	plans := []string{"m4.large", "t2.large", "m4.xlarge"}
	for i := 0; i < 6; i++ {
		gen := gens[i%len(gens)]()
		if _, err := s.AddInstance(InstanceSpec{
			Provision: cluster.ProvisionSpec{
				ID: fmt.Sprintf("db-%02d", i), Plan: plans[i%len(plans)],
				Engine: knobs.Postgres, DBSizeBytes: gen.DBSizeBytes(),
				Slaves: i % 2, Seed: 100 + int64(i),
			},
			Workload: gen,
			Agent:    agent.Options{TickEvery: 5 * time.Minute, GateSamples: true},
		}); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// safetyTotals reads the gate's fleet-wide counters for comparison.
func safetyTotals(s *System) [4]int64 {
	v, c, r, x := s.Director.SafetyTotals()
	return [4]int64{v, c, r, x}
}

// TestSafetyGateParallelismInvariance: gate decisions are made in the
// ordered merge phase, so a gated fleet must fingerprint identically at
// every parallelism level — including the gate's own counters and
// serialized state — clean and under the medium fault profile.
func TestSafetyGateParallelismInvariance(t *testing.T) {
	for _, chaos := range []bool{false, true} {
		t.Run(fmt.Sprintf("chaos=%v", chaos), func(t *testing.T) {
			inject := func() *faults.Injector {
				if !chaos {
					return nil
				}
				return faults.New(99, faults.Medium())
			}
			ref := buildSafetyFleet(t, 1, inject())
			stepN(ref, 16)
			want := fingerprintSystem(ref)
			wantTotals := safetyTotals(ref)
			wantState, err := ref.SafetyGate().MarshalState()
			if err != nil {
				t.Fatal(err)
			}
			if wantTotals[1] == 0 {
				t.Fatal("degenerate run: the gate never ran a canary")
			}

			pars := []int{4}
			if !testing.Short() {
				pars = append(pars, 16)
			}
			for _, par := range pars {
				got := buildSafetyFleet(t, par, inject())
				stepN(got, 16)
				if fp := fingerprintSystem(got); !reflect.DeepEqual(want, fp) {
					t.Errorf("P=%d fingerprint diverged from P=1", par)
				}
				if totals := safetyTotals(got); totals != wantTotals {
					t.Errorf("P=%d safety totals = %v, want %v", par, totals, wantTotals)
				}
				gotState, err := got.SafetyGate().MarshalState()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(wantState, gotState) {
					t.Errorf("P=%d gate state diverged from P=1", par)
				}
			}
		})
	}
}

// TestSafetyGateKillRestoreEquivalence: the gate's baselines, trust
// radii and watch state ride the extra/safety checkpoint section, so an
// interrupted gated run resumed in a fresh process must land bit-for-bit
// on the uninterrupted run — counters and serialized gate state included.
func TestSafetyGateKillRestoreEquivalence(t *testing.T) {
	const total, cut = 20, 9
	for _, chaos := range []bool{false, true} {
		t.Run(fmt.Sprintf("chaos=%v", chaos), func(t *testing.T) {
			inject := func() *faults.Injector {
				if !chaos {
					return nil
				}
				return faults.New(99, faults.Medium())
			}

			ref := buildSafetyFleet(t, 4, inject())
			stepN(ref, total)
			want := fingerprintSystem(ref)
			wantTotals := safetyTotals(ref)
			wantState, err := ref.SafetyGate().MarshalState()
			if err != nil {
				t.Fatal(err)
			}

			first := buildSafetyFleet(t, 4, inject())
			stepN(first, cut)
			var snap bytes.Buffer
			if err := first.Checkpoint(&snap); err != nil {
				t.Fatal(err)
			}
			// The snapshot must carry the gate's section.
			_, sections, err := checkpoint.Inspect(bytes.NewReader(snap.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := sections["extra/"+safety.SectionName]; !ok {
				names := make([]string, 0, len(sections))
				for n := range sections {
					names = append(names, n)
				}
				t.Fatalf("snapshot lacks extra/%s (has: %s)", safety.SectionName, strings.Join(names, ", "))
			}

			resumed := buildSafetyFleet(t, 4, inject())
			if err := resumed.Restore(bytes.NewReader(snap.Bytes())); err != nil {
				t.Fatal(err)
			}
			stepN(resumed, total-cut)
			if got := fingerprintSystem(resumed); !reflect.DeepEqual(want, got) {
				t.Errorf("resumed gated run diverged from uninterrupted run")
			}
			if totals := safetyTotals(resumed); totals != wantTotals {
				t.Errorf("resumed safety totals = %v, want %v", totals, wantTotals)
			}
			gotState, err := resumed.SafetyGate().MarshalState()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(wantState, gotState) {
				t.Errorf("resumed gate state diverged from uninterrupted run")
			}
		})
	}
}

// TestRestoreRejectsMissingSafetySection: a gated system restoring a
// snapshot written by an ungated system must fail the manifest check —
// silently resetting the gate would un-learn every baseline.
func TestRestoreRejectsMissingSafetySection(t *testing.T) {
	plain := buildGateFleet(t, 1, nil, nil)
	stepN(plain, 2)
	var snap bytes.Buffer
	if err := plain.Checkpoint(&snap); err != nil {
		t.Fatal(err)
	}

	gated := buildSafetyFleet(t, 1, nil)
	err := gated.Restore(bytes.NewReader(snap.Bytes()))
	if err == nil {
		t.Fatal("gated system restored an ungated snapshot")
	}
	if !strings.Contains(err.Error(), safety.SectionName) {
		t.Fatalf("error does not name the missing section: %v", err)
	}
}

// TestSeedConfigErrorPaths pins SeedConfig's failure modes: unknown
// instance, a DFA apply rejected by an injected fault, and a restart
// fault striking mid-seed — plus the success path's clamp-and-fit
// behaviour for out-of-range donor configs.
func TestSeedConfigErrorPaths(t *testing.T) {
	addOne := func(t *testing.T, s *System) string {
		t.Helper()
		gen := workload.NewYCSB(10*cluster.GiB, 2000)
		if _, err := s.AddInstance(InstanceSpec{
			Provision: cluster.ProvisionSpec{
				ID: "db-00", Plan: "m4.large", Engine: knobs.Postgres,
				DBSizeBytes: gen.DBSizeBytes(), Seed: 100,
			},
			Workload: gen,
			Agent:    agent.Options{TickEvery: 5 * time.Minute},
		}); err != nil {
			t.Fatal(err)
		}
		return "db-00"
	}
	newSys := func(t *testing.T, in *faults.Injector) *System {
		t.Helper()
		tb, err := bo.New(bo.Options{Engine: knobs.Postgres, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewSystemWithOptions(Options{Faults: in}, tb)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	t.Run("unknown-instance", func(t *testing.T) {
		s := newSys(t, nil)
		if err := s.SeedConfig("nope", knobs.Config{"work_mem": 8}); err == nil {
			t.Fatal("seeding an unknown instance succeeded")
		}
	})

	t.Run("apply-fault", func(t *testing.T) {
		s := newSys(t, faults.New(1, faults.Profile{ApplyError: 1}))
		id := addOne(t, s)
		before := configOf(t, s, id)
		err := s.SeedConfig(id, knobs.Config{"work_mem": 8})
		if err == nil {
			t.Fatal("seed survived a 100% apply-fault profile")
		}
		if !errors.Is(err, dfa.ErrRejected) {
			t.Fatalf("error is not a DFA rejection: %v", err)
		}
		if !strings.Contains(err.Error(), "injected failure") {
			t.Fatalf("rejection does not surface the injected fault: %v", err)
		}
		if got := configOf(t, s, id); !got.Equal(before) {
			t.Fatalf("failed seed mutated the config: %v -> %v", before, got)
		}
	})

	t.Run("restart-fault", func(t *testing.T) {
		s := newSys(t, faults.New(1, faults.Profile{StuckRestart: 1}))
		id := addOne(t, s)
		err := s.SeedConfig(id, knobs.Config{"work_mem": 8})
		if err == nil {
			t.Fatal("seed survived a 100% stuck-restart profile")
		}
		if !strings.Contains(err.Error(), "seed-config restart") {
			t.Fatalf("error does not name the restart phase: %v", err)
		}
	})

	t.Run("clamp-and-fit", func(t *testing.T) {
		s := newSys(t, nil)
		id := addOne(t, s)
		// An out-of-range working-memory knob must clamp into the
		// catalogue bounds and shrink to the memory budget, not error.
		if err := s.SeedConfig(id, knobs.Config{"work_mem": 1e12}); err != nil {
			t.Fatalf("out-of-range seed config: %v", err)
		}
		cfg := configOf(t, s, id)
		kcat := knobs.PostgresCatalog()
		if err := kcat.Validate(cfg); err != nil {
			t.Fatalf("seeded config is out of catalogue range: %v", err)
		}
	})

	t.Run("budget-rejection", func(t *testing.T) {
		s := newSys(t, nil)
		id := addOne(t, s)
		before := configOf(t, s, id)
		// The buffer-pool knob is deliberately not shrunk by the
		// budget fit (it only changes in maintenance windows), so a
		// donor pool bigger than the instance dies at the DFA dry-run.
		err := s.SeedConfig(id, knobs.Config{"shared_buffers": 1e12})
		if err == nil {
			t.Fatal("oversized buffer pool accepted")
		}
		if !errors.Is(err, dfa.ErrRejected) || !strings.Contains(err.Error(), "exceed instance budget") {
			t.Fatalf("error is not the dry-run budget rejection: %v", err)
		}
		if got := configOf(t, s, id); !got.Equal(before) {
			t.Fatalf("failed seed mutated the config: %v -> %v", before, got)
		}
	})
}

// configOf reads one instance's live master config.
func configOf(t *testing.T, s *System, id string) knobs.Config {
	t.Helper()
	for _, a := range s.Agents() {
		if a.Instance().ID == id {
			return a.Instance().Replica.Master().Config()
		}
	}
	t.Fatalf("no agent %s", id)
	return nil
}
