// Package core assembles AutoDBaaS: the service orchestrator, Data
// Federation Agent, config director, central data repository, tuner
// fleet and per-instance tuning agents, wired exactly as Figure 1 of
// the paper. It is the library's primary public surface: provision
// database service instances, attach workloads, and step the whole
// system through (virtual) time.
package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"autodbaas/internal/agent"
	"autodbaas/internal/cluster"
	"autodbaas/internal/dfa"
	"autodbaas/internal/director"
	"autodbaas/internal/monitor"
	"autodbaas/internal/orchestrator"
	"autodbaas/internal/repository"
	"autodbaas/internal/simdb"
	"autodbaas/internal/tde"
	"autodbaas/internal/tuner"
	"autodbaas/internal/workload"
)

// System is one AutoDBaaS deployment.
type System struct {
	mu sync.Mutex

	Orchestrator *orchestrator.Orchestrator
	DFA          *dfa.DFA
	Director     *director.Director
	Repository   *repository.Repository
	Tuners       []tuner.Tuner

	agents   map[string]*agent.Agent
	order    []string
	monitors map[string]*monitor.Agent
}

// NewSystem wires a deployment around the given tuner fleet. Every
// tuner is subscribed to the central data repository.
func NewSystem(tuners ...tuner.Tuner) (*System, error) {
	if len(tuners) == 0 {
		return nil, errors.New("core: need at least one tuner instance")
	}
	orch := orchestrator.New()
	d := dfa.New(orch)
	dir, err := director.New(orch, d, tuners...)
	if err != nil {
		return nil, err
	}
	repo := repository.New()
	for _, t := range tuners {
		repo.Subscribe(t)
	}
	return &System{
		Orchestrator: orch,
		DFA:          d,
		Director:     dir,
		Repository:   repo,
		Tuners:       tuners,
		agents:       make(map[string]*agent.Agent),
		monitors:     make(map[string]*monitor.Agent),
	}, nil
}

// InstanceSpec describes one database service instance to onboard.
type InstanceSpec struct {
	Provision cluster.ProvisionSpec
	Workload  workload.Generator
	Agent     agent.Options
}

// AddInstance provisions the instance, starts its tuning agent and
// external monitoring, and returns the agent.
func (s *System) AddInstance(spec InstanceSpec) (*agent.Agent, error) {
	if spec.Workload == nil {
		return nil, errors.New("core: nil workload")
	}
	inst, err := s.Orchestrator.Provision(spec.Provision)
	if err != nil {
		return nil, err
	}
	opts := spec.Agent
	if opts.Mode == agent.ModePeriodic && opts.Tuning == nil {
		opts.Tuning = s.Director
	}
	// Default the bgwriter baseline to a tuner that can supply the
	// mapped-workload reference of §3.2 (the BO tuner does); otherwise
	// the TDE falls back to the static tuned-TPCC baseline.
	if opts.Baseline == nil {
		for _, t := range s.Tuners {
			if b, ok := t.(tde.Baseline); ok {
				opts.Baseline = b
				break
			}
		}
	}
	a, err := agent.New(inst, spec.Workload, s.Director, s.Repository, opts)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.agents[inst.ID]; dup {
		return nil, fmt.Errorf("core: agent for %s already exists", inst.ID)
	}
	s.agents[inst.ID] = a
	s.order = append(s.order, inst.ID)
	s.monitors[inst.ID] = monitor.NewAgent(100_000)
	return a, nil
}

// Agent returns the agent for an instance.
func (s *System) Agent(id string) (*agent.Agent, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	a, ok := s.agents[id]
	return a, ok
}

// Agents returns all agents in onboarding order.
func (s *System) Agents() []*agent.Agent {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*agent.Agent, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.agents[id])
	}
	return out
}

// Monitor returns the external monitoring agent for an instance.
func (s *System) Monitor(id string) (*monitor.Agent, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.monitors[id]
	return m, ok
}

// StepResult aggregates one system step.
type StepResult struct {
	Windows   map[string]simdb.WindowStats
	Events    map[string][]tde.Event
	Errors    map[string]error
	Throttles int
}

// Step advances every instance by one observation window, sampling the
// monitoring series and dispatching TDE events through the director.
func (s *System) Step(dur time.Duration) StepResult {
	res := StepResult{
		Windows: make(map[string]simdb.WindowStats),
		Events:  make(map[string][]tde.Event),
		Errors:  make(map[string]error),
	}
	for _, a := range s.Agents() {
		id := a.Instance().ID
		st, events, err := a.RunWindow(dur)
		res.Windows[id] = st
		res.Events[id] = events
		if err != nil {
			res.Errors[id] = err
		}
		for _, ev := range events {
			if ev.Kind == tde.KindThrottle {
				res.Throttles++
			}
		}
		// External monitoring (the Dynatrace substitute).
		if m, ok := s.Monitor(id); ok {
			now := a.Instance().Replica.Master().Now()
			_ = m.Series("disk_latency_ms").Append(now, st.DiskLatencyMs)
			_ = m.Series("iops").Append(now, st.IOPS)
			_ = m.Series("throughput_qps").Append(now, st.Achieved)
			_ = m.Series("p99_latency_ms").Append(now, st.P99Ms)
		}
	}
	// Reconciler watch loop rides on the step cadence.
	if len(s.order) > 0 {
		if a := s.agents[s.order[0]]; a != nil {
			s.Orchestrator.ReconcileTick(a.Instance().Replica.Master().Now())
		}
	}
	return res
}

// RunFor steps the system with the given window until total has elapsed,
// returning the aggregate throttle count.
func (s *System) RunFor(total, window time.Duration) int {
	var throttles int
	for elapsed := time.Duration(0); elapsed < total; elapsed += window {
		throttles += s.Step(window).Throttles
	}
	return throttles
}

// MaintenanceWindow runs the scheduled-downtime logic on one instance.
func (s *System) MaintenanceWindow(id string) error {
	return s.Director.MaintenanceWindowByID(id)
}

// ApproveUpgrade acts on the TDE's plan-upgrade signals for an instance
// (the customer said yes): the instance is re-provisioned onto the next
// larger VM plan with its tunable configuration preserved, and a fresh
// tuning agent replaces the old one.
func (s *System) ApproveUpgrade(id string, seed int64) (*agent.Agent, error) {
	s.mu.Lock()
	old, ok := s.agents[id]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("core: no agent for %s", id)
	}
	if s.Director.PendingUpgradeRequests(id) == 0 {
		return nil, fmt.Errorf("core: no pending upgrade request for %s", id)
	}
	gen := old.Generator()
	inst, err := s.Orchestrator.Provisioner().UpgradePlan(id, gen.DBSizeBytes(), seed)
	if err != nil {
		return nil, err
	}
	opts := agent.Options{TickEvery: 5 * time.Minute, GateSamples: true}
	a, err := agent.New(inst, gen, s.Director, s.Repository, opts)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.agents[id] = a
	s.mu.Unlock()
	s.Director.ClearUpgradeRequests(id)
	// Persist the upgraded instance's config as the new source of truth.
	if err := s.Orchestrator.PersistConfig(id, inst.Replica.Master().Config()); err != nil {
		return nil, err
	}
	return a, nil
}
