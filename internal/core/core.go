// Package core assembles AutoDBaaS: the service orchestrator, Data
// Federation Agent, config director, central data repository, tuner
// fleet and per-instance tuning agents, wired exactly as Figure 1 of
// the paper. It is the library's primary public surface: provision
// database service instances, attach workloads, and step the whole
// system through (virtual) time.
package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"autodbaas/internal/agent"
	"autodbaas/internal/checkpoint"
	"autodbaas/internal/cluster"
	"autodbaas/internal/dfa"
	"autodbaas/internal/director"
	"autodbaas/internal/faults"
	"autodbaas/internal/knobs"
	"autodbaas/internal/monitor"
	"autodbaas/internal/obs"
	"autodbaas/internal/orchestrator"
	"autodbaas/internal/repository"
	"autodbaas/internal/safety"
	"autodbaas/internal/simdb"
	"autodbaas/internal/tde"
	"autodbaas/internal/tuner"
	"autodbaas/internal/workload"
)

// Options configures a System beyond its tuner fleet.
type Options struct {
	// Parallelism bounds how many instances step concurrently inside
	// one Step call. Each instance owns its virtual clock and RNG, so
	// observation windows are independent; control-plane side effects
	// are merged in onboarding order, making results bit-for-bit
	// identical at every parallelism level. 0 means GOMAXPROCS.
	Parallelism int
	// Faults, when non-nil, injects deterministic faults into every seam
	// of the deployment: engine apply/restart/window hooks, tuner
	// Recommend wrappers, repository fan-out fates and monitor sampling.
	// The injector's per-site PRNG streams keep chaos runs bit-for-bit
	// reproducible from (seed, profile) at every parallelism level.
	Faults *faults.Injector
	// Safety, when non-nil, wires the safe-tuning gate (internal/safety)
	// between tuner recommendations and the director's apply: shadow
	// canary evaluation, trust regions around known-good configs, and
	// automatic rollback on post-apply regression. Gate state rides
	// checkpoints in the "extra/safety" section. Zero fields default.
	Safety *safety.Options
}

// System is one AutoDBaaS deployment.
type System struct {
	mu sync.Mutex

	Orchestrator *orchestrator.Orchestrator
	DFA          *dfa.DFA
	Director     *director.Director
	Repository   *repository.Repository
	Tuners       []tuner.Tuner

	agents   map[string]*agent.Agent
	order    []string
	monitors map[string]*monitor.Agent

	// Membership table: generation is a monotonic counter bumped on
	// every add, remove and resize; memberGens records the generation at
	// which each live member last (re-)joined. Together with order it is
	// the cohort the checkpoint manifest pins, so a snapshot can name
	// exactly which fleet it was taken from.
	generation int
	memberGens map[string]int

	parallelism int
	faults      *faults.Injector
	safety      *safety.Gate
	m           coreMetrics

	// windows counts completed Steps; it rides the snapshot manifest so
	// a restored system resumes the numbering.
	windows int
	// Auto-checkpoint: every ckptEvery-th window a snapshot lands in
	// ckptDir (see SetAutoCheckpoint).
	ckptDir        string
	ckptEvery      int
	ckptLastPath   string
	ckptLastWindow int
	ckptLastErr    error
	// ckptExtras are auxiliary snapshot sections registered by layered
	// subsystems (see RegisterCheckpointExtra).
	ckptExtras []checkpoint.Extra
}

// coreMetrics are the fleet scheduler's registry handles.
type coreMetrics struct {
	stepSeconds  *obs.Histogram
	mergeSeconds *obs.Histogram
	workersBusy  *obs.Gauge
	utilization  *obs.Gauge
	parallelism  *obs.Gauge
}

func newCoreMetrics(r *obs.Registry) coreMetrics {
	return coreMetrics{
		stepSeconds:  r.Histogram("autodbaas_core_step_seconds", "Wall-clock latency of one fleet step (parallel windows + ordered merge).", nil),
		mergeSeconds: r.Histogram("autodbaas_core_step_merge_seconds", "Wall-clock latency of the ordered control-plane merge phase of one step.", nil),
		workersBusy:  r.Gauge("autodbaas_core_fleet_workers_busy", "Fleet-scheduler workers currently running an instance window."),
		utilization:  r.Gauge("autodbaas_core_fleet_worker_utilization", "Busy-time share of the worker pool over the last parallel window phase (0-1)."),
		parallelism:  r.Gauge("autodbaas_core_fleet_parallelism", "Configured fleet-step parallelism."),
	}
}

// NewSystem wires a deployment around the given tuner fleet with
// default options. Every tuner is subscribed to the central data
// repository.
func NewSystem(tuners ...tuner.Tuner) (*System, error) {
	return NewSystemWithOptions(Options{}, tuners...)
}

// NewSystemWithOptions wires a deployment around the given tuner fleet.
func NewSystemWithOptions(opts Options, tuners ...tuner.Tuner) (*System, error) {
	if len(tuners) == 0 {
		return nil, errors.New("core: need at least one tuner instance")
	}
	par := opts.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	orch := orchestrator.New()
	d := dfa.New(orch)
	// Chaos decoration happens at wiring time so every path — director
	// dispatch, repository fan-out, engine hooks — sees the same wrapped
	// fleet. WrapTuners preserves the tde.Baseline capability.
	tuners = opts.Faults.WrapTuners(tuners)
	dir, err := director.New(orch, d, tuners...)
	if err != nil {
		return nil, err
	}
	repo := repository.New()
	if opts.Faults != nil {
		repo.InjectFaults(opts.Faults)
	}
	for _, t := range tuners {
		repo.Subscribe(t)
	}
	s := &System{
		Orchestrator: orch,
		DFA:          d,
		Director:     dir,
		Repository:   repo,
		Tuners:       tuners,
		agents:       make(map[string]*agent.Agent),
		monitors:     make(map[string]*monitor.Agent),
		memberGens:   make(map[string]int),
		parallelism:  par,
		faults:       opts.Faults,
		m:            newCoreMetrics(obs.Default()),
	}
	if opts.Safety != nil {
		g := safety.NewGate(*opts.Safety)
		s.safety = g
		dir.SetSafetyGate(g)
		// Gate state rides snapshots as "extra/safety" so kill/restore
		// resumes baselines, trust radii and in-flight watches exactly.
		s.RegisterCheckpointExtra(safety.SectionName,
			g.MarshalState, g.RestoreState)
	}
	s.m.parallelism.Set(float64(par))
	return s, nil
}

// SafetyGate returns the wired safe-tuning gate (nil when safety is
// off).
func (s *System) SafetyGate() *safety.Gate { return s.safety }

// Parallelism returns the configured fleet-step parallelism.
func (s *System) Parallelism() int { return s.parallelism }

// Faults returns the system's fault injector (nil when chaos is off).
func (s *System) Faults() *faults.Injector { return s.faults }

// InstanceSpec describes one database service instance to onboard.
type InstanceSpec struct {
	Provision cluster.ProvisionSpec
	Workload  workload.Generator
	Agent     agent.Options
}

// AddInstance provisions the instance, starts its tuning agent and
// external monitoring, and returns the agent.
func (s *System) AddInstance(spec InstanceSpec) (*agent.Agent, error) {
	if spec.Workload == nil {
		return nil, errors.New("core: nil workload")
	}
	inst, err := s.Orchestrator.Provision(spec.Provision)
	if err != nil {
		return nil, err
	}
	s.installFaultHooks(inst)
	opts := spec.Agent
	if opts.Mode == agent.ModePeriodic && opts.Tuning == nil {
		opts.Tuning = s.Director
	}
	// Default the bgwriter baseline to a tuner that can supply the
	// mapped-workload reference of §3.2 (the BO tuner does); otherwise
	// the TDE falls back to the static tuned-TPCC baseline.
	if opts.Baseline == nil {
		for _, t := range s.Tuners {
			if b, ok := t.(tde.Baseline); ok {
				opts.Baseline = b
				break
			}
		}
	}
	a, err := agent.New(inst, spec.Workload, s.Director, s.Repository, opts)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.agents[inst.ID]; dup {
		return nil, fmt.Errorf("core: agent for %s already exists", inst.ID)
	}
	s.agents[inst.ID] = a
	s.order = append(s.order, inst.ID)
	s.monitors[inst.ID] = monitor.NewAgent(100_000)
	s.generation++
	s.memberGens[inst.ID] = s.generation
	if s.safety != nil {
		s.safety.RegisterWorkload(inst.ID, spec.Workload)
	}
	return a, nil
}

// RemoveInstance deprovisions an instance mid-run: the repository
// fan-out is drained so every sample the instance uploaded has reached
// the tuners (its training history outlives it — the fleet-wide warm
// start the paper's workload mapping relies on), then the agent,
// monitor, director shard, orchestrator record and fault-site streams
// are all dropped and the IaaS instance released. The membership
// generation bumps, so a snapshot taken after the removal pins the
// surviving cohort. Call it between Steps, never concurrently with one.
func (s *System) RemoveInstance(id string) error {
	s.mu.Lock()
	_, ok := s.agents[id]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("core: no agent for %s", id)
	}
	// Drain: every queued sample — including ones this instance uploaded
	// in its final window — is delivered before the member disappears.
	s.Repository.Flush()
	if err := s.Orchestrator.Deprovision(id); err != nil {
		return err
	}
	s.Director.ForgetInstance(id)
	s.faults.ForgetInstance(id)
	s.mu.Lock()
	delete(s.agents, id)
	delete(s.monitors, id)
	delete(s.memberGens, id)
	for i, oid := range s.order {
		if oid == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	s.generation++
	s.mu.Unlock()
	return nil
}

// ResizeInstance re-provisions an instance onto an explicit VM plan —
// the elastic fleet's resize verb, distinct from ApproveUpgrade's
// customer-driven next-plan-up path. Tunable knobs carry over (re-fitted
// to the new plan's memory budget), a fresh tuning agent and monitor
// replace the old ones, and the shared tuners' repository history gives
// the re-blueprinted instance a warm start. The membership generation
// bumps so snapshots distinguish the pre- and post-resize cohorts.
func (s *System) ResizeInstance(id, plan string, seed int64, opts agent.Options) (*agent.Agent, error) {
	s.mu.Lock()
	old, ok := s.agents[id]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("core: no agent for %s", id)
	}
	gen := old.Generator()
	inst, err := s.Orchestrator.Provisioner().Reprovision(id, plan, gen.DBSizeBytes(), seed)
	if err != nil {
		return nil, err
	}
	s.installFaultHooks(inst)
	if opts.Mode == agent.ModePeriodic && opts.Tuning == nil {
		opts.Tuning = s.Director
	}
	if opts.Baseline == nil {
		for _, t := range s.Tuners {
			if b, ok := t.(tde.Baseline); ok {
				opts.Baseline = b
				break
			}
		}
	}
	a, err := agent.New(inst, gen, s.Director, s.Repository, opts)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.agents[id] = a
	// Fresh monitor: the old series mixed plans; keep every series
	// single-plan, as ApproveUpgrade does.
	s.monitors[id] = monitor.NewAgent(100_000)
	s.generation++
	s.memberGens[id] = s.generation
	s.mu.Unlock()
	if s.safety != nil {
		// New plan, new performance envelope: baselines and the
		// known-good config no longer describe this instance.
		s.safety.Forget(id)
		s.safety.RegisterWorkload(id, gen)
	}
	if err := s.Orchestrator.PersistConfig(id, inst.Replica.Master().Config()); err != nil {
		return nil, err
	}
	return a, nil
}

// SeedConfig applies a starting configuration to a freshly provisioned
// instance — the fleet warm start's second half, alongside seeding the
// repository with donor history. The config is clamped to the engine's
// catalogue and re-fitted to the instance's memory budget (a donor may
// have run on a bigger plan), staged via the DFA, and made fully live
// with a node restart — the instance has served no traffic yet, so the
// restart is free — then persisted as the orchestrator's source of
// truth so reconciliation and redeploys keep it.
func (s *System) SeedConfig(id string, cfg knobs.Config) error {
	s.mu.Lock()
	a, ok := s.agents[id]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("core: no agent for %s", id)
	}
	inst := a.Instance()
	master := inst.Replica.Master()
	kcat := master.KnobCatalog()
	fitted := kcat.FitMemoryBudget(kcat.Clamp(cfg), knobs.MemoryBudget{
		TotalBytes: master.Resources().MemoryBytes, WorkMemSessions: 4,
	})
	if err := s.DFA.Apply(inst, fitted, simdb.ApplyReload); err != nil {
		return err
	}
	for _, node := range inst.Replica.Nodes() {
		if err := node.Restart(); err != nil {
			return fmt.Errorf("core: seed-config restart: %w", err)
		}
	}
	if s.safety != nil {
		// A donor's proven config is the best known-good starting point
		// the gate can center its trust region on.
		s.safety.RecordKnownGood(id, inst.Replica.Master().Config())
	}
	return s.Orchestrator.PersistConfig(id, inst.Replica.Master().Config())
}

// Member is one row of the membership table.
type Member struct {
	ID  string
	Gen int // generation at which the member last (re-)joined
}

// Members returns the live cohort in onboarding order with the
// generation each member joined at.
func (s *System) Members() []Member {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Member, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, Member{ID: id, Gen: s.memberGens[id]})
	}
	return out
}

// Generation returns the current membership generation — a monotonic
// counter bumped by every add, remove and resize.
func (s *System) Generation() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.generation
}

// FleetSize returns the number of live instances.
func (s *System) FleetSize() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.order)
}

// installFaultHooks attaches the injector's per-node engine hooks to
// every node of the instance (a no-op without an injector).
func (s *System) installFaultHooks(inst *cluster.Instance) {
	if s.faults == nil {
		return
	}
	for i, node := range inst.Replica.Nodes() {
		node.SetFaultHooks(s.faults.EngineHooks(inst.ID, i))
	}
}

// Agent returns the agent for an instance.
func (s *System) Agent(id string) (*agent.Agent, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	a, ok := s.agents[id]
	return a, ok
}

// Agents returns all agents in onboarding order.
func (s *System) Agents() []*agent.Agent {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*agent.Agent, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.agents[id])
	}
	return out
}

// Monitor returns the external monitoring agent for an instance.
func (s *System) Monitor(id string) (*monitor.Agent, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.monitors[id]
	return m, ok
}

// StepResult aggregates one system step.
type StepResult struct {
	Windows   map[string]simdb.WindowStats
	Events    map[string][]tde.Event
	Errors    map[string]error
	Throttles int
}

// stepAgent is one fleet member snapshotted for a step.
type stepAgent struct {
	a   *agent.Agent
	mon *monitor.Agent
}

// snapshotFleet returns the fleet in onboarding order with its monitors.
func (s *System) snapshotFleet() []stepAgent {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]stepAgent, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, stepAgent{a: s.agents[id], mon: s.monitors[id]})
	}
	return out
}

// Step advances every instance by one observation window, sampling the
// monitoring series and dispatching TDE events through the director.
//
// The step runs in two phases. First the instance-local window
// simulation executes on a worker pool of up to Parallelism
// goroutines; every instance owns its virtual clock and RNG, so this
// phase has no cross-instance state. Then the detection round and the
// control-plane side effects (director dispatch, repository upload,
// monitor sampling) are merged strictly in onboarding order, with the
// repository's async fan-out drained before each dispatch, so throttle
// counts, monitor series, tuner state and errors are bit-for-bit
// identical to the sequential schedule at any worker count.
func (s *System) Step(dur time.Duration) StepResult {
	stepStart := time.Now()
	fleet := s.snapshotFleet()
	res := StepResult{
		Windows: make(map[string]simdb.WindowStats),
		Events:  make(map[string][]tde.Event),
		Errors:  make(map[string]error),
	}
	outs := make([]agent.WindowOutcome, len(fleet))

	// Phase 1: parallel instance-local windows.
	workers := s.parallelism
	if workers > len(fleet) {
		workers = len(fleet)
	}
	if workers <= 1 {
		for i := range fleet {
			outs[i] = runWindowLocal(fleet[i], dur)
		}
	} else {
		var cursor atomic.Int64
		var busyNanos atomic.Int64
		var wg sync.WaitGroup
		phaseStart := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(cursor.Add(1)) - 1
					if i >= len(fleet) {
						return
					}
					s.m.workersBusy.Add(1)
					t0 := time.Now()
					outs[i] = runWindowLocal(fleet[i], dur)
					busyNanos.Add(int64(time.Since(t0)))
					s.m.workersBusy.Add(-1)
				}
			}()
		}
		wg.Wait()
		if wall := time.Since(phaseStart); wall > 0 {
			s.m.utilization.Set(float64(busyNanos.Load()) / float64(int64(workers)*int64(wall)))
		}
	}

	// Phase 2: ordered control-plane merge. The detection round runs
	// inside Dispatch — its checkpoint detector reads a baseline off
	// the shared tuner's sample store, which earlier agents' uploads in
	// this very step grow — so it must execute in fleet order.
	mergeStart := time.Now()
	for i := range fleet {
		a := fleet[i].a
		id := a.Instance().ID
		// Drain earlier agents' queued samples so this dispatch sees
		// exactly the tuner state the sequential schedule would.
		s.Repository.Flush()
		dispatchErr := a.Dispatch(&outs[i])
		out := outs[i]
		res.Windows[id] = out.Stats
		res.Events[id] = out.Events
		for _, ev := range out.Events {
			if ev.Kind == tde.KindThrottle {
				res.Throttles++
			}
		}
		switch {
		case out.Err != nil:
			res.Errors[id] = out.Err
		case dispatchErr != nil:
			res.Errors[id] = dispatchErr
		}
		// Safety gate window intake: still inside the ordered merge, right
		// after this instance's dispatch (which may have applied a config),
		// so the gate sees windows and applies in the exact sequential
		// order at every parallelism level. Rollbacks happen here.
		if s.safety != nil {
			s.Director.SafetyObserve(a.Instance(), out.Stats, out.Err == nil)
		}
		// External monitoring (the Dynatrace substitute), sampled after
		// dispatch as in the sequential schedule. An injected monitor
		// loss drops the whole sampling round for this window, as if the
		// scrape timed out.
		if mon := fleet[i].mon; mon != nil && !s.faults.DropMonitorSample(id) {
			now := a.Instance().Replica.Master().Now()
			st := out.Stats
			_ = mon.Series("disk_latency_ms").Append(now, st.DiskLatencyMs)
			_ = mon.Series("iops").Append(now, st.IOPS)
			_ = mon.Series("throughput_qps").Append(now, st.Achieved)
			_ = mon.Series("p99_latency_ms").Append(now, st.P99Ms)
		}
	}
	s.Repository.Flush()
	s.m.mergeSeconds.Observe(time.Since(mergeStart).Seconds())

	// Reconciler watch loop rides on the step cadence.
	s.mu.Lock()
	var first *agent.Agent
	if len(s.order) > 0 {
		first = s.agents[s.order[0]]
	}
	s.mu.Unlock()
	if first != nil {
		s.Orchestrator.ReconcileTick(first.Instance().Replica.Master().Now())
	}
	s.mu.Lock()
	s.windows++
	s.mu.Unlock()
	s.maybeAutoCheckpoint()
	s.m.stepSeconds.Observe(time.Since(stepStart).Seconds())
	return res
}

// runWindowLocal runs one fleet member's instance-local phase. Only
// sa's own state is touched, so calls for distinct members run
// concurrently.
func runWindowLocal(sa stepAgent, dur time.Duration) agent.WindowOutcome {
	return sa.a.RunWindowLocal(dur)
}

// RunFor steps the system with the given window until total has elapsed,
// returning the aggregate throttle count.
func (s *System) RunFor(total, window time.Duration) int {
	var throttles int
	for elapsed := time.Duration(0); elapsed < total; elapsed += window {
		throttles += s.Step(window).Throttles
	}
	return throttles
}

// MaintenanceWindow runs the scheduled-downtime logic on one instance.
func (s *System) MaintenanceWindow(id string) error {
	return s.Director.MaintenanceWindowByID(id)
}

// ApproveUpgrade acts on the TDE's plan-upgrade signals for an instance
// (the customer said yes): the instance is re-provisioned onto the next
// larger VM plan with its tunable configuration preserved, and a fresh
// tuning agent replaces the old one.
func (s *System) ApproveUpgrade(id string, seed int64) (*agent.Agent, error) {
	s.mu.Lock()
	old, ok := s.agents[id]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("core: no agent for %s", id)
	}
	if s.Director.PendingUpgradeRequests(id) == 0 {
		return nil, fmt.Errorf("core: no pending upgrade request for %s", id)
	}
	gen := old.Generator()
	inst, err := s.Orchestrator.Provisioner().UpgradePlan(id, gen.DBSizeBytes(), seed)
	if err != nil {
		return nil, err
	}
	s.installFaultHooks(inst)
	opts := agent.Options{TickEvery: 5 * time.Minute, GateSamples: true}
	a, err := agent.New(inst, gen, s.Director, s.Repository, opts)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.agents[id] = a
	// Fresh monitor: the old series mixed pre-upgrade measurements with
	// the new plan's; a monitor reset keeps every series single-plan.
	s.monitors[id] = monitor.NewAgent(100_000)
	s.mu.Unlock()
	if s.safety != nil {
		s.safety.Forget(id)
		s.safety.RegisterWorkload(id, gen)
	}
	s.Director.ClearUpgradeRequests(id)
	// Persist the upgraded instance's config as the new source of truth.
	if err := s.Orchestrator.PersistConfig(id, inst.Replica.Master().Config()); err != nil {
		return nil, err
	}
	return a, nil
}
