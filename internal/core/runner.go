package core

import (
	"context"
	"errors"
	"sync"
	"time"

	"autodbaas/internal/simclock"
)

// Runner drives a System on a Clock: one system Step per observation
// window, paced by clock.Sleep. With a simclock.Virtual it turns the
// experiment harness's explicit stepping into a background simulation
// that an Advance-ing driver (or the real clock, in cmd/autodbaas)
// controls — the same code path serves tests, benches and the service
// binary.
type Runner struct {
	sys    *System
	clock  simclock.Clock
	window time.Duration

	mu      sync.Mutex
	steps   int
	lastRes StepResult
}

// NewRunner returns a runner stepping sys every window on clock.
func NewRunner(sys *System, clock simclock.Clock, window time.Duration) (*Runner, error) {
	if sys == nil || clock == nil {
		return nil, errors.New("core: nil system or clock")
	}
	if window <= 0 {
		return nil, errors.New("core: non-positive window")
	}
	return &Runner{sys: sys, clock: clock, window: window}, nil
}

// Steps returns how many windows have run.
func (r *Runner) Steps() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.steps
}

// LastResult returns the most recent step result.
func (r *Runner) LastResult() StepResult {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastRes
}

// Run loops until ctx is cancelled: sleep one window on the clock, then
// step the system. It returns ctx.Err() on cancellation.
func (r *Runner) Run(ctx context.Context) error {
	for {
		// Sleep first so a virtual-clock driver controls the cadence.
		done := make(chan struct{})
		go func() {
			r.clock.Sleep(r.window)
			close(done)
		}()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-done:
		}
		res := r.sys.Step(r.window)
		r.mu.Lock()
		r.steps++
		r.lastRes = res
		r.mu.Unlock()
	}
}
