// The external test package breaks the core → httpapi → fleet → core
// cycle the in-package test build would otherwise form.
package core_test

import (
	"net/http/httptest"
	"testing"
	"time"

	"autodbaas/internal/agent"
	"autodbaas/internal/cluster"
	"autodbaas/internal/core"
	"autodbaas/internal/httpapi"
	"autodbaas/internal/knobs"
	"autodbaas/internal/tuner/bo"
	"autodbaas/internal/workload"
)

// TestFullStackOverHTTP wires the on-VM agent to the control plane the
// way a real deployment would: TDE events travel to the config director
// over HTTP, training samples travel to the central data repository over
// HTTP, and the resulting recommendations land back on the database via
// the DFA — end to end.
func TestFullStackOverHTTP(t *testing.T) {
	tn, err := bo.New(bo.Options{Engine: knobs.Postgres, Candidates: 100, MaxSamplesPerFit: 80, UCBBeta: 0.4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystem(tn)
	if err != nil {
		t.Fatal(err)
	}

	dirSrv := httptest.NewServer(httpapi.NewDirectorServer(sys.Director))
	defer dirSrv.Close()
	repoSrv := httptest.NewServer(httpapi.NewRepositoryServer(sys.Repository))
	defer repoSrv.Close()

	// Provision through the orchestrator, but build the agent manually
	// against the HTTP clients (instead of the in-process sinks).
	gen := workload.NewAdulteratedTPCC(21*workload.GiB, 3000, 0.5)
	inst, err := sys.Orchestrator.Provision(cluster.ProvisionSpec{
		ID: "http-db", Plan: "m4.large", Engine: knobs.Postgres,
		DBSizeBytes: gen.DBSizeBytes(), Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := agent.New(inst, gen,
		httpapi.NewDirectorClient(dirSrv.URL),
		httpapi.NewRepositoryClient(repoSrv.URL),
		agent.Options{TickEvery: 5 * time.Minute, GateSamples: true})
	if err != nil {
		t.Fatal(err)
	}

	before := inst.Replica.Master().Config()
	for w := 0; w < 24; w++ {
		if _, _, err := a.RunWindow(5 * time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	if sys.Director.TuningRequests() == 0 {
		t.Fatal("no tuning requests arrived over HTTP")
	}
	if sys.Repository.Len() == 0 {
		t.Fatal("no samples arrived over HTTP")
	}
	if sys.DFA.Applied() == 0 {
		t.Fatal("no recommendation was applied")
	}
	if inst.Replica.Master().Config().Equal(before) {
		t.Fatal("database config unchanged after HTTP-driven tuning")
	}
}
