package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"autodbaas/internal/agent"
	"autodbaas/internal/cluster"
	"autodbaas/internal/knobs"
	"autodbaas/internal/simclock"
	"autodbaas/internal/tuner/bo"
	"autodbaas/internal/workload"
)

func TestNewRunnerValidation(t *testing.T) {
	tn, _ := bo.New(bo.DefaultOptions(knobs.Postgres))
	sys, _ := NewSystem(tn)
	if _, err := NewRunner(nil, simclock.Real{}, time.Minute); err == nil {
		t.Fatal("nil system accepted")
	}
	if _, err := NewRunner(sys, nil, time.Minute); err == nil {
		t.Fatal("nil clock accepted")
	}
	if _, err := NewRunner(sys, simclock.Real{}, 0); err == nil {
		t.Fatal("zero window accepted")
	}
}

func TestRunnerPacedByVirtualClock(t *testing.T) {
	tn, err := bo.New(bo.DefaultOptions(knobs.Postgres))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(tn)
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewYCSB(10*cluster.GiB, 2000)
	if _, err := sys.AddInstance(InstanceSpec{
		Provision: cluster.ProvisionSpec{
			ID: "paced", Plan: "m4.large", Engine: knobs.Postgres,
			DBSizeBytes: gen.DBSizeBytes(), Seed: 1,
		},
		Workload: gen,
		Agent:    agent.Options{TickEvery: 5 * time.Minute},
	}); err != nil {
		t.Fatal(err)
	}

	clock := simclock.NewVirtualAtZero()
	r, err := NewRunner(sys, clock, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() { errCh <- r.Run(ctx) }()

	// No advance, no steps.
	time.Sleep(20 * time.Millisecond)
	if r.Steps() != 0 {
		t.Fatalf("runner stepped without the clock advancing: %d", r.Steps())
	}
	// Advance three windows, one at a time, waiting for each step.
	for want := 1; want <= 3; want++ {
		for clock.PendingWaiters() == 0 {
			time.Sleep(time.Millisecond)
		}
		clock.Advance(5 * time.Minute)
		deadline := time.Now().Add(2 * time.Second)
		for r.Steps() < want {
			if time.Now().After(deadline) {
				t.Fatalf("step %d never happened", want)
			}
			time.Sleep(time.Millisecond)
		}
	}
	if got := r.LastResult().Windows["paced"].Offered; got != 2000 {
		t.Fatalf("last result offered = %g", got)
	}
	cancel()
	// Unblock a sleeping runner so the goroutine can observe cancellation.
	clock.Advance(5 * time.Minute)
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Run returned %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not stop on cancel")
	}
}
