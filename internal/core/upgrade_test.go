package core

import (
	"testing"
	"time"

	"autodbaas/internal/agent"
	"autodbaas/internal/cluster"
	"autodbaas/internal/knobs"
	"autodbaas/internal/simdb"
	"autodbaas/internal/tuner/bo"
	"autodbaas/internal/workload"
)

// TestPlanUpgradeFlow drives an instance into the entropy filter's
// plan-upgrade verdict (memory knobs at cap, evenly mixed throttle
// classes) and verifies the customer-approval path moves it to the next
// larger VM plan with its tunable config intact.
func TestPlanUpgradeFlow(t *testing.T) {
	tn, err := bo.New(bo.DefaultOptions(knobs.Postgres))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(tn)
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewAdulteratedTPCC(21*cluster.GiB, 3000, 0.9)
	a, err := sys.AddInstance(InstanceSpec{
		Provision: cluster.ProvisionSpec{
			ID: "cramped", Plan: "m4.large", Engine: knobs.Postgres,
			DBSizeBytes: gen.DBSizeBytes(), Seed: 11,
		},
		Workload: gen,
		Agent:    agent.Options{TickEvery: 5 * time.Minute, GateSamples: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	// No pending request yet: approval must refuse.
	if _, err := sys.ApproveUpgrade("cramped", 1); err == nil {
		t.Fatal("approval without a pending request accepted")
	}
	// Pin work_mem near the budget cap so memory throttles cannot be
	// solved by tuning; lower the entropy threshold so the evenly-mixed
	// adulterated classes clearly qualify.
	master := a.Instance().Replica.Master()
	if err := master.ApplyConfig(knobs.Config{"work_mem": 860 * 1024 * 1024}, simdb.ApplyReload); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40 && sys.Director.PendingUpgradeRequests("cramped") == 0; i++ {
		sys.Step(5 * time.Minute)
	}
	if sys.Director.PendingUpgradeRequests("cramped") == 0 {
		t.Fatal("entropy filter never raised a plan-upgrade request")
	}
	upgraded, err := sys.ApproveUpgrade("cramped", 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := upgraded.Instance().Plan.Name; got != "m4.xlarge" {
		t.Fatalf("upgraded to %s, want m4.xlarge", got)
	}
	if sys.Director.PendingUpgradeRequests("cramped") != 0 {
		t.Fatal("upgrade queue not cleared")
	}
	// The monitor restarts with the upgrade so a series never mixes
	// samples from two different VM plans.
	mon, ok := sys.Monitor("cramped")
	if !ok {
		t.Fatal("monitor missing after upgrade")
	}
	if got := mon.Series("disk_latency_ms").Len(); got != 0 {
		t.Fatalf("monitor kept %d pre-upgrade points, want a fresh series", got)
	}
	// The fleet keeps stepping with the new agent in place.
	res := sys.Step(5 * time.Minute)
	if res.Windows["cramped"].Achieved <= 0 {
		t.Fatal("upgraded instance not serving")
	}
	if got := mon.Series("disk_latency_ms").Len(); got == 0 {
		t.Fatal("fresh monitor not sampling after upgrade")
	}
	// Persisted config points at the upgraded instance's live config.
	persisted, err := sys.Orchestrator.PersistedConfig("cramped")
	if err != nil {
		t.Fatal(err)
	}
	if !persisted.Equal(upgraded.Instance().Replica.Master().Config()) {
		t.Fatal("persisted config not refreshed after upgrade")
	}
}
