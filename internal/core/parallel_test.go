package core

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"autodbaas/internal/agent"
	"autodbaas/internal/cluster"
	"autodbaas/internal/faults"
	"autodbaas/internal/knobs"
	"autodbaas/internal/tuner/bo"
	"autodbaas/internal/workload"
)

// fleetFingerprint captures everything the determinism guarantee
// covers: throttle counts, repository contents, director counters, the
// monitoring series lengths and every instance's final configuration.
type fleetFingerprint struct {
	Throttles       int
	Samples         int
	TuningRequests  int
	Recommendations int
	ApplyFailures   int
	PlanUpgrades    int
	MonitorPoints   map[string]int
	Configs         map[string]knobs.Config
}

// runFleet builds the same mixed fleet at the given parallelism, steps
// it for two simulated hours and fingerprints the result.
func runFleet(t *testing.T, parallelism int) fleetFingerprint {
	return runFleetWith(t, parallelism, nil)
}

// runFleetWith is runFleet with an optional fault injector.
func runFleetWith(t *testing.T, parallelism int, in *faults.Injector) fleetFingerprint {
	t.Helper()
	tn, err := bo.New(bo.Options{Engine: knobs.Postgres, Candidates: 60, MaxSamplesPerFit: 60, UCBBeta: 0.5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSystemWithOptions(Options{Parallelism: parallelism, Faults: in}, tn)
	if err != nil {
		t.Fatal(err)
	}
	gens := []func() workload.Generator{
		func() workload.Generator { return workload.NewAdulteratedTPCC(21*cluster.GiB, 3000, 0.8) },
		func() workload.Generator { return workload.NewProduction() },
		func() workload.Generator { return workload.NewYCSB(10*cluster.GiB, 2000) },
	}
	plans := []string{"m4.large", "t2.large", "m4.xlarge"}
	const fleet = 6
	for i := 0; i < fleet; i++ {
		gen := gens[i%len(gens)]()
		if _, err := s.AddInstance(InstanceSpec{
			Provision: cluster.ProvisionSpec{
				ID: fmt.Sprintf("db-%02d", i), Plan: plans[i%len(plans)],
				Engine: knobs.Postgres, DBSizeBytes: gen.DBSizeBytes(), Seed: 100 + int64(i),
			},
			Workload: gen,
			Agent:    agent.Options{TickEvery: 5 * time.Minute, GateSamples: true},
		}); err != nil {
			t.Fatal(err)
		}
	}
	fp := fleetFingerprint{
		Throttles:     s.RunFor(2*time.Hour, 5*time.Minute),
		Samples:       s.Repository.Len(),
		MonitorPoints: make(map[string]int),
		Configs:       make(map[string]knobs.Config),
	}
	fp.TuningRequests, fp.Recommendations, fp.ApplyFailures, fp.PlanUpgrades = s.Director.Counters()
	for _, a := range s.Agents() {
		id := a.Instance().ID
		fp.Configs[id] = a.Instance().Replica.Master().Config()
		if m, ok := s.Monitor(id); ok {
			fp.MonitorPoints[id] = m.Series("disk_latency_ms").Len()
		}
	}
	return fp
}

// TestStepDeterminismAcrossParallelism is the fleet scheduler's core
// guarantee: identical seeds produce bit-for-bit identical results at
// every worker count, because the window phase is instance-local and
// the control-plane merge runs in onboarding order.
func TestStepDeterminismAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet determinism sweep")
	}
	base := runFleet(t, 1)
	if base.Throttles == 0 || base.Samples == 0 || base.TuningRequests == 0 {
		t.Fatalf("degenerate baseline: %+v", base)
	}
	for _, par := range []int{4, 16} {
		got := runFleet(t, par)
		if !reflect.DeepEqual(base, got) {
			t.Errorf("parallelism=%d diverged from sequential run:\n  seq: %+v\n  par: %+v", par, base, got)
		}
	}
}

// TestStepDeterminismAcrossParallelismUnderFaults extends the
// determinism guarantee to chaos runs: the injector draws from per-site
// PRNG streams, so a fixed (fault seed, profile) yields identical fleet
// fingerprints AND identical per-kind injected-fault counts at every
// parallelism level.
func TestStepDeterminismAcrossParallelismUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet determinism sweep")
	}
	run := func(par int) (fleetFingerprint, map[string]int64) {
		in := faults.New(99, faults.Medium())
		fp := runFleetWith(t, par, in)
		return fp, in.Counts()
	}
	base, baseCounts := run(1)
	if len(baseCounts) == 0 {
		t.Fatal("medium profile injected nothing over two fleet hours")
	}
	for _, par := range []int{4, 16} {
		got, counts := run(par)
		if !reflect.DeepEqual(base, got) {
			t.Errorf("parallelism=%d chaos run diverged:\n  seq: %+v\n  par: %+v", par, base, got)
		}
		if !reflect.DeepEqual(baseCounts, counts) {
			t.Errorf("parallelism=%d injected different faults:\n  seq: %v\n  par: %v", par, baseCounts, counts)
		}
	}
}

// TestZeroProfileInjectorIsTransparent pins the acceptance criterion
// that wiring an injector with the zero profile changes nothing: the
// fingerprint matches a run with no injector at all.
func TestZeroProfileInjectorIsTransparent(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet sweep")
	}
	clean := runFleet(t, 4)
	in := faults.New(12345, faults.Zero())
	zero := runFleetWith(t, 4, in)
	if !reflect.DeepEqual(clean, zero) {
		t.Errorf("zero-profile injector perturbed the run:\n  clean: %+v\n  zero:  %+v", clean, zero)
	}
	if in.InjectedTotal() != 0 {
		t.Errorf("zero profile injected %d faults", in.InjectedTotal())
	}
}

// TestParallelismAccessorAndDefault pins the Options plumbing.
func TestParallelismAccessorAndDefault(t *testing.T) {
	tn, err := bo.New(bo.DefaultOptions(knobs.Postgres))
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSystemWithOptions(Options{Parallelism: 3}, tn)
	if err != nil {
		t.Fatal(err)
	}
	if s.Parallelism() != 3 {
		t.Fatalf("parallelism = %d, want 3", s.Parallelism())
	}
	tn2, err := bo.New(bo.DefaultOptions(knobs.Postgres))
	if err != nil {
		t.Fatal(err)
	}
	def, err := NewSystem(tn2)
	if err != nil {
		t.Fatal(err)
	}
	if def.Parallelism() < 1 {
		t.Fatalf("default parallelism = %d, want >= 1", def.Parallelism())
	}
}
