package entropy

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestShannonUniformMax(t *testing.T) {
	if got, want := Shannon([]int{1, 1, 1, 1}), math.Log(4); math.Abs(got-want) > 1e-12 {
		t.Fatalf("H(uniform4) = %g, want %g", got, want)
	}
}

func TestShannonDegenerate(t *testing.T) {
	if Shannon([]int{7, 0, 0}) != 0 {
		t.Fatal("single-class entropy must be 0")
	}
	if Shannon(nil) != 0 || Shannon([]int{0, 0}) != 0 {
		t.Fatal("empty/zero histogram entropy must be 0")
	}
}

func TestNormalizedRange(t *testing.T) {
	if got := Normalized([]int{1, 1, 1, 1}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("η(uniform) = %g, want 1", got)
	}
	if got := Normalized([]int{100, 1}); got <= 0 || got >= 1 {
		t.Fatalf("η(skewed) = %g, want in (0,1)", got)
	}
	if Normalized([]int{5}) != 0 {
		t.Fatal("η of 1 class must be 0")
	}
}

func TestNormalizedSkewLowerThanEven(t *testing.T) {
	even := Normalized([]int{10, 10, 10, 10, 10})
	skew := Normalized([]int{46, 1, 1, 1, 1})
	if !(skew < even) {
		t.Fatalf("η(skew)=%g not < η(even)=%g", skew, even)
	}
}

func TestFilterForwardsBelowThreshold(t *testing.T) {
	f := NewFilter()
	for i := 0; i < 7; i++ {
		d, _, err := f.ObserveThrottle([]int{5, 5}, true)
		if err != nil || d != Forward {
			t.Fatalf("throttle %d: decision %v err %v", i, d, err)
		}
	}
	if f.Consecutive() != 7 {
		t.Fatalf("consecutive = %d", f.Consecutive())
	}
}

func TestFilterPlanUpgradeOnEvenMixAtCap(t *testing.T) {
	f := NewFilter()
	var last Decision
	var eta float64
	for i := 0; i < 8; i++ {
		last, eta, _ = f.ObserveThrottle([]int{10, 10, 10, 10}, true)
	}
	if last != PlanUpgrade {
		t.Fatalf("decision = %v, want PlanUpgrade (η=%g)", last, eta)
	}
	if f.Upgrades() != 1 || f.Evaluations() != 1 {
		t.Fatalf("Upgrades=%d Evaluations=%d", f.Upgrades(), f.Evaluations())
	}
}

func TestFilterHoldsWhenNotAtCap(t *testing.T) {
	f := NewFilter()
	var last Decision
	for i := 0; i < 8; i++ {
		last, _, _ = f.ObserveThrottle([]int{10, 10, 10, 10}, false)
	}
	if last != Hold {
		t.Fatalf("decision = %v, want Hold", last)
	}
	if f.Upgrades() != 0 {
		t.Fatal("no upgrade expected when knobs below cap")
	}
}

func TestFilterHoldsOnSkewedMix(t *testing.T) {
	f := NewFilter()
	f.EntropyThreshold = 0.75
	var last Decision
	for i := 0; i < 8; i++ {
		last, _, _ = f.ObserveThrottle([]int{100, 1, 1, 1}, true)
	}
	if last != Hold {
		t.Fatalf("decision = %v, want Hold for skewed mix", last)
	}
}

func TestFilterQuietResetsRun(t *testing.T) {
	f := NewFilter()
	for i := 0; i < 7; i++ {
		f.ObserveThrottle([]int{1, 1}, true)
	}
	f.ObserveQuiet()
	if f.Consecutive() != 0 {
		t.Fatal("quiet did not reset run")
	}
	d, _, _ := f.ObserveThrottle([]int{1, 1}, true)
	if d != Forward {
		t.Fatalf("post-quiet decision = %v, want Forward", d)
	}
}

func TestFilterEmptyHistogramError(t *testing.T) {
	f := NewFilter()
	f.ConsecutiveThreshold = 1
	d, _, err := f.ObserveThrottle(nil, true)
	if !errors.Is(err, ErrNoHistogram) {
		t.Fatalf("err = %v", err)
	}
	if d != Forward {
		t.Fatalf("empty-histogram fallback decision = %v, want Forward", d)
	}
}

func TestFilterZeroThresholdDefaultsToEight(t *testing.T) {
	f := &Filter{EntropyThreshold: 0.5}
	var evals int
	for i := 0; i < 16; i++ {
		f.ObserveThrottle([]int{1, 1}, false)
	}
	evals = f.Evaluations()
	if evals != 2 {
		t.Fatalf("evaluations = %d, want 2 (default threshold 8)", evals)
	}
}

func TestDecisionString(t *testing.T) {
	if Forward.String() != "forward" || PlanUpgrade.String() != "plan-upgrade" || Hold.String() != "hold" {
		t.Fatal("decision strings wrong")
	}
	if Decision(42).String() != "unknown" {
		t.Fatal("unknown decision string wrong")
	}
}

// Property: η ∈ [0,1] for any histogram, and uniform histograms dominate.
func TestNormalizedBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		counts := make([]int, n)
		for i := range counts {
			counts[i] = rng.Intn(1000)
		}
		eta := Normalized(counts)
		uniform := make([]int, n)
		for i := range uniform {
			uniform[i] = 10
		}
		return eta >= 0 && eta <= 1+1e-12 && Normalized(uniform) >= eta-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
