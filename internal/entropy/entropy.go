// Package entropy implements the normalized-entropy throttle filter of
// AutoDBaaS §3.1. The TDE groups observed query templates into classes,
// builds a frequency histogram, and computes the normalized Shannon
// entropy η(X) ∈ [0,1]. After a run of consecutive memory throttles the
// filter decides whether the throttles stem from genuinely mis-set knobs
// (keep asking the tuner) or from an undersized instance whose memory
// knobs have hit their caps (suppress throttles and request a plan
// upgrade instead).
//
// Note on conventions: the paper's prose describes "high randomness /
// evenly distributed classes" as the plan-upgrade case. Mathematically
// an even distribution maximizes Shannon entropy, so this package calls
// that condition high entropy; the paper's Figures 3–4 plot the same
// quantity. What matters for the reproduction is the *decision rule*:
// evenly-spread throttle-prone classes + knobs at cap ⇒ plan upgrade.
package entropy

import (
	"errors"
	"math"
)

// Shannon returns the Shannon entropy (natural log) of a discrete
// distribution given by non-negative counts. Zero counts contribute
// nothing; an all-zero histogram has zero entropy.
func Shannon(counts []int) float64 {
	var total float64
	for _, c := range counts {
		if c > 0 {
			total += float64(c)
		}
	}
	if total == 0 {
		return 0
	}
	var h float64
	for _, c := range counts {
		if c <= 0 {
			continue
		}
		p := float64(c) / total
		h -= p * math.Log(p)
	}
	return h
}

// Normalized returns η(X) = H(X)/log(n) ∈ [0,1] where n = len(counts).
// Histograms with fewer than two classes have zero normalized entropy.
func Normalized(counts []int) float64 {
	n := len(counts)
	if n < 2 {
		return 0
	}
	return Shannon(counts) / math.Log(float64(n))
}

// Filter implements the consecutive-throttle entropy gate.
type Filter struct {
	// ConsecutiveThreshold is how many consecutive throttles arm an
	// entropy evaluation. The paper uses 8.
	ConsecutiveThreshold int
	// EntropyThreshold is the η value above which the class mix counts
	// as "evenly distributed" (throttles will keep coming while caps
	// bind). The paper leaves this to deployment; 0.7 is our default —
	// measured against the 11-class histogram, a fully adulterated TPCC
	// sits at η ≈ 0.74–0.87 and plain TPCC at η ≈ 0.46.
	EntropyThreshold float64

	consecutive int
	evaluations int
	upgrades    int
}

// NewFilter returns a filter with the paper's defaults (8 consecutive
// throttles, η threshold 0.7).
func NewFilter() *Filter {
	return &Filter{ConsecutiveThreshold: 8, EntropyThreshold: 0.7}
}

// Decision is the outcome of observing one throttle.
type Decision int

// Decision values.
const (
	// Forward: pass the throttle to the config director (tuning request).
	Forward Decision = iota
	// PlanUpgrade: suppress the tuning request and signal that the
	// instance's hardware plan is insufficient.
	PlanUpgrade
	// Hold: an entropy evaluation ran but did not indicate cap
	// exhaustion; wait for the next window of consecutive throttles.
	Hold
)

// String implements fmt.Stringer.
func (d Decision) String() string {
	switch d {
	case Forward:
		return "forward"
	case PlanUpgrade:
		return "plan-upgrade"
	case Hold:
		return "hold"
	default:
		return "unknown"
	}
}

// ErrNoHistogram is returned when an evaluation is armed but no class
// histogram is supplied.
var ErrNoHistogram = errors.New("entropy: evaluation armed but histogram empty")

// ObserveThrottle records one throttle event. classCounts is the current
// query-class frequency histogram; atCap reports whether the throttling
// memory knobs have reached their maximum values. The returned Decision
// tells the TDE what to do with this throttle.
func (f *Filter) ObserveThrottle(classCounts []int, atCap bool) (Decision, float64, error) {
	f.consecutive++
	thresh := f.ConsecutiveThreshold
	if thresh <= 0 {
		thresh = 8
	}
	if f.consecutive < thresh {
		return Forward, math.NaN(), nil
	}
	// Evaluation armed: compute entropy over the class histogram.
	f.consecutive = 0
	f.evaluations++
	if len(classCounts) == 0 {
		return Forward, math.NaN(), ErrNoHistogram
	}
	eta := Normalized(classCounts)
	if eta >= f.EntropyThreshold && atCap {
		f.upgrades++
		return PlanUpgrade, eta, nil
	}
	return Hold, eta, nil
}

// ObserveQuiet records a tuning interval without a throttle, breaking
// the consecutive run.
func (f *Filter) ObserveQuiet() { f.consecutive = 0 }

// Consecutive returns the current consecutive-throttle count.
func (f *Filter) Consecutive() int { return f.consecutive }

// Evaluations returns how many entropy evaluations have run.
func (f *Filter) Evaluations() int { return f.evaluations }

// Upgrades returns how many plan-upgrade signals were raised.
func (f *Filter) Upgrades() int { return f.upgrades }

// FilterState is the filter's serializable mutable state (the
// thresholds are construction parameters and restore with the rebuild).
type FilterState struct {
	Consecutive int `json:"consecutive"`
	Evaluations int `json:"evaluations"`
	Upgrades    int `json:"upgrades"`
}

// CheckpointState captures the filter's counters.
func (f *Filter) CheckpointState() FilterState {
	return FilterState{Consecutive: f.consecutive, Evaluations: f.evaluations, Upgrades: f.upgrades}
}

// RestoreCheckpointState overwrites the filter's counters.
func (f *Filter) RestoreCheckpointState(st FilterState) {
	f.consecutive, f.evaluations, f.upgrades = st.Consecutive, st.Evaluations, st.Upgrades
}
