module autodbaas

go 1.22
